"""Discrete-event simulation core.

The DASH system of the paper ran on real machines; this reproduction runs
on a deterministic discrete-event simulator.  :class:`EventLoop` keeps a
timer queue of timestamped callbacks.  All timing-sensitive behaviour in
the library (delay bounds, deadlines, retransmission timers, CPU
scheduling) is expressed through this single clock, which makes every
experiment reproducible bit-for-bit from its random seed.

Times are floats in *seconds* of simulated time.

Implementation: a hybrid calendar-wheel / heap timer queue.  Events due
*now* (``call_soon`` and ``call_at(now)``) go to a plain FIFO deque --
the dominant case on the protocol fast path, serviced without any heap
comparison.  Future events within the wheel horizon are hashed by
timestamp into one of ``_WHEEL_SLOTS`` per-slot heaps of
``(time, seq, handle)`` tuples, so ordering comparisons happen on
C-level tuples rather than via ``EventHandle.__lt__``.  Events beyond
the horizon wait in a single overflow heap and migrate into the wheel as
the clock advances.  The dispatch order is the exact total order of the
original single-heap implementation -- ``(time, seq)`` with FIFO at
equal timestamps -- so seeded runs reproduce bit-identically.

Cancelled events are removed lazily; when more than a quarter of the
queued entries are dead the queue compacts in place.  Executed handles
are recycled through a free pool when the caller kept no reference
(checked via ``sys.getrefcount``), so steady-state scheduling allocates
nothing.
"""

from __future__ import annotations

import heapq
import itertools
import sys
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SchedulingError

__all__ = ["EventHandle", "EventLoop", "GroupTimer", "Signal", "TimerGroup"]

# Wheel geometry: 512 slots of 1 ms cover a 512 ms horizon, comfortably
# wider than any single timer used by the protocol stack (propagation
# delays, retransmission timers, delay bounds are all well under that).
_WHEEL_SLOTS = 512
_WHEEL_GRANULARITY = 0.001

# Compaction threshold: rebuild the queue when at least _COMPACT_MIN
# cancelled entries make up over a quarter of everything queued.
_COMPACT_MIN = 64

# Handle free-pool bound; beyond this, executed handles are simply
# dropped for the garbage collector.
_POOL_CAP = 4096

_getrefcount = getattr(sys, "getrefcount", None)


class EventHandle:
    """A cancellable reference to one scheduled callback."""

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled",
                 "_queued", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
    ) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._queued = False
        self._loop: Optional["EventLoop"] = None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _noop
        self._args = ()
        if self._queued and self._loop is not None:
            self._loop._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _run(self) -> None:
        self._callback(*self._args)

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self._seq) < (other.time, other._seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} {state}>"


def _noop() -> None:
    return None


class EventLoop:
    """A deterministic discrete-event scheduler.

    Events scheduled for the same instant run in scheduling order (FIFO),
    which keeps protocol traces deterministic.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._seq = itertools.count()
        self._running = False
        self._events_run = 0
        # Timer queue state -- see the module docstring.
        self._bucket: Deque[EventHandle] = deque()
        self._slots: List[List[Tuple[float, int, EventHandle]]] = [
            [] for _ in range(_WHEEL_SLOTS)
        ]
        self._far: List[Tuple[float, int, EventHandle]] = []
        self._gran = _WHEEL_GRANULARITY
        self._inv_gran = 1.0 / _WHEEL_GRANULARITY
        self._base = int(self._now * self._inv_gran)
        # Occupancy hint: no occupied wheel slot has an absolute index in
        # [_base, _scan_slot), so the next-event scan may start there
        # instead of walking every empty slot from the origin each
        # iteration.  Maintained by insertions (which may lower it) and
        # by the scan itself (which raises it past empty slots).
        self._scan_slot = self._base
        self._wheel_count = 0
        self._queued_count = 0
        self._cancelled_in_queue = 0
        self._pool: List[EventHandle] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Number of callbacks executed so far (for tests and tracing)."""
        return self._events_run

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._queued_count - self._cancelled_in_queue

    @property
    def queue_depth(self) -> int:
        """Total queued entries, including cancelled ones awaiting
        compaction (introspection for tests and telemetry)."""
        return self._queued_count

    # -- scheduling ----------------------------------------------------

    def _acquire(
        self, when: float, callback: Callable[..., None], args: Tuple[Any, ...]
    ) -> EventHandle:
        pool = self._pool
        if pool:
            handle = pool.pop()
            handle.time = when
            handle._seq = next(self._seq)
            handle._callback = callback
            handle._args = args
            handle._cancelled = False
        else:
            handle = EventHandle(when, next(self._seq), callback, args)
            handle._loop = self
        handle._queued = True
        self._queued_count += 1
        return handle

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``."""
        now = self._now
        if when < now:
            raise SchedulingError(
                f"cannot schedule event at {when:.6f}, now is {now:.6f}"
            )
        handle = self._acquire(when, callback, args)
        if when == now:
            self._bucket.append(handle)
        else:
            slot_no = int(when * self._inv_gran)
            if slot_no - self._base < _WHEEL_SLOTS:
                heapq.heappush(
                    self._slots[slot_no % _WHEEL_SLOTS],
                    (when, handle._seq, handle),
                )
                self._wheel_count += 1
                if slot_no < self._scan_slot:
                    self._scan_slot = slot_no
            else:
                heapq.heappush(self._far, (when, handle._seq, handle))
        return handle

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time, after pending
        same-time events."""
        handle = self._acquire(self._now, callback, args)
        self._bucket.append(handle)
        return handle

    # -- queue maintenance ---------------------------------------------

    def _rebase(self) -> None:
        """Advance the wheel origin to the current time and migrate
        overflow events that fell inside the horizon."""
        slot_no = int(self._now * self._inv_gran)
        if slot_no > self._base:
            self._base = slot_no
        far = self._far
        if far:
            horizon = self._base + _WHEEL_SLOTS
            inv_gran = self._inv_gran
            slots = self._slots
            while far and int(far[0][0] * inv_gran) < horizon:
                entry = heapq.heappop(far)
                slot_no = int(entry[0] * inv_gran)
                heapq.heappush(slots[slot_no % _WHEEL_SLOTS], entry)
                self._wheel_count += 1
                if slot_no < self._scan_slot:
                    self._scan_slot = slot_no

    def _note_cancel(self) -> None:
        self._cancelled_in_queue += 1
        count = self._cancelled_in_queue
        if count >= _COMPACT_MIN and count * 4 >= self._queued_count:
            self._compact()

    def _release(self, dropped: List[EventHandle]) -> None:
        """Recycle handles nobody else references.  Mutates structures in
        place only -- safe mid-``run``."""
        pool = self._pool
        getref = _getrefcount
        while dropped:
            handle = dropped.pop()
            if (
                getref is not None
                and len(pool) < _POOL_CAP
                and getref(handle) == 2
            ):
                pool.append(handle)

    def _compact(self) -> None:
        """Physically remove cancelled entries.  All containers are
        filtered in place so references hoisted by a running ``run()``
        stay valid."""
        dropped: List[EventHandle] = []
        bucket = self._bucket
        if bucket:
            kept = []
            for handle in bucket:
                if handle._cancelled:
                    handle._queued = False
                    dropped.append(handle)
                else:
                    kept.append(handle)
            bucket.clear()
            bucket.extend(kept)
        wheel_count = 0
        for slot in self._slots:
            if not slot:
                continue
            live = [entry for entry in slot if not entry[2]._cancelled]
            if len(live) != len(slot):
                for entry in slot:
                    if entry[2]._cancelled:
                        entry[2]._queued = False
                        dropped.append(entry[2])
                slot[:] = live
                heapq.heapify(slot)
            wheel_count += len(live)
        far = self._far
        if far:
            live = [entry for entry in far if not entry[2]._cancelled]
            if len(live) != len(far):
                for entry in far:
                    if entry[2]._cancelled:
                        entry[2]._queued = False
                        dropped.append(entry[2])
                far[:] = live
                heapq.heapify(far)
        self._wheel_count = wheel_count
        self._queued_count = len(bucket) + wheel_count + len(far)
        self._cancelled_in_queue = 0
        self._release(dropped)

    # -- dispatch ------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events in time order.

        Stops when the queue is empty, when the next event lies beyond
        ``until`` (the clock then advances exactly to ``until``), or after
        ``max_events`` callbacks.  Returns the simulated time at which the
        run stopped.
        """
        if self._running:
            raise SchedulingError("event loop is already running (reentrant run())")
        self._running = True
        executed = 0
        ran = 0
        budget = -1 if max_events is None else max_events
        # Hoisted locals: every container is mutated strictly in place
        # (including by _compact), so these bindings stay valid across
        # arbitrary callback re-entry into the scheduler.
        bucket = self._bucket
        bucket_popleft = bucket.popleft
        slots = self._slots
        far = self._far
        pool = self._pool
        getref = _getrefcount
        heappop = heapq.heappop
        self._rebase()
        try:
            while True:
                now = self._now
                # Next wheel/overflow event, if any.  The slot hash is
                # monotone in time, so the first occupied slot from the
                # wheel origin holds the wheel minimum.
                nxt_slot = None
                nxt_time = 0.0
                if self._wheel_count:
                    base = self._base
                    start = self._scan_slot
                    if start < base:
                        start = base
                    for slot_no in range(start, base + _WHEEL_SLOTS):
                        slot = slots[slot_no % _WHEEL_SLOTS]
                        if slot:
                            nxt_slot = slot
                            nxt_time = slot[0][0]
                            self._scan_slot = slot_no
                            break
                if far and (nxt_slot is None or far[0][0] < nxt_time):
                    nxt_slot = far
                    nxt_time = far[0][0]
                    in_far = True
                else:
                    in_far = False
                if nxt_slot is not None and nxt_time <= now:
                    # Timer events that became due: they predate (in seq
                    # order) anything in the now-bucket, so drain them
                    # first.
                    while nxt_slot and nxt_slot[0][0] <= now:
                        if ran == budget:
                            raise _Stop
                        handle = heappop(nxt_slot)[2]
                        self._queued_count -= 1
                        if not in_far:
                            self._wheel_count -= 1
                        handle._queued = False
                        if handle._cancelled:
                            self._cancelled_in_queue -= 1
                        else:
                            handle._callback(*handle._args)
                            executed += 1
                            ran += 1
                            handle._callback = _noop
                            handle._args = ()
                        if (
                            getref is not None
                            and len(pool) < _POOL_CAP
                            and getref(handle) == 2
                        ):
                            pool.append(handle)
                    continue
                if bucket:
                    # The fast path: call_soon events at the current
                    # instant, FIFO, no heap involved.
                    while bucket:
                        if ran == budget:
                            raise _Stop
                        handle = bucket_popleft()
                        self._queued_count -= 1
                        handle._queued = False
                        if handle._cancelled:
                            self._cancelled_in_queue -= 1
                        else:
                            handle._callback(*handle._args)
                            executed += 1
                            ran += 1
                            handle._callback = _noop
                            handle._args = ()
                        if (
                            getref is not None
                            and len(pool) < _POOL_CAP
                            and getref(handle) == 2
                        ):
                            pool.append(handle)
                    continue
                if nxt_slot is None:
                    break
                if nxt_slot[0][2]._cancelled:
                    # Discard a dead queue head without advancing the
                    # clock -- matches the original lazy-cancel heap,
                    # where skipped events never moved `now`.
                    handle = heappop(nxt_slot)[2]
                    self._queued_count -= 1
                    if not in_far:
                        self._wheel_count -= 1
                    self._cancelled_in_queue -= 1
                    handle._queued = False
                    if (
                        getref is not None
                        and len(pool) < _POOL_CAP
                        and getref(handle) == 2
                    ):
                        pool.append(handle)
                    continue
                if until is not None and nxt_time > until:
                    break
                if ran == budget:
                    break
                self._now = nxt_time
                self._rebase()
        except _Stop:
            pass
        finally:
            self._running = False
            self._events_run += executed
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until(
        self, until: float, max_events: Optional[int] = None
    ) -> float:
        """Batch-run every event with ``time <= until`` and leave the
        clock exactly at ``until``.  Equivalent to ``run(until=until)``;
        the explicit name documents the batching entry point used by the
        benches."""
        return self.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain.  ``max_events`` guards runaway loops."""
        end = self.run(max_events=max_events)
        if self.pending_events:
            raise SchedulingError(
                f"event loop did not go idle within {max_events} events"
            )
        return end

    def __repr__(self) -> str:
        return (
            f"<EventLoop now={self._now:.6f} pending={self.pending_events} "
            f"run={self._events_run}>"
        )


class _Stop(Exception):
    """Internal: unwind the dispatch loop when max_events is reached."""


class GroupTimer:
    """One logical deadline inside a :class:`TimerGroup`.

    Mirrors the :class:`EventHandle` surface the protocol layers use
    (``time``, ``cancel()``, ``cancelled``) so call sites can hold either
    interchangeably.
    """

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled", "_group")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        group: "TimerGroup",
    ) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._group = group

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._callback = _noop
        self._args = ()
        group = self._group
        if group is not None:
            self._group = None
            group._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return f"<GroupTimer t={self.time:.6f} {state}>"


class TimerGroup:
    """Many logical deadlines coalesced onto one rearming loop timer.

    Protocol layers that keep one deadline per pending message
    (piggyback flushes, control-request retransmissions, RKOM call
    timeouts, supervisor retries) would otherwise schedule and cancel a
    loop timer per message.  A group keeps those deadlines in its own
    ``(time, seq)`` heap and arms a *single* loop timer at the earliest
    live deadline, rearming only when the front changes -- so loop-timer
    churn is O(groups), not O(messages), while every callback still runs
    at exactly its scheduled simulated time, FIFO at equal times.

    Unlike the loop's lazy-cancel queue, cancelled entries are dropped
    eagerly: dead heads are popped on cancellation and the whole heap is
    compacted as soon as dead entries outnumber live ones.  When the
    last live deadline is cancelled the loop timer is left armed and
    simply no-ops (rearming at whatever is live by then), so pure
    schedule/cancel churn never touches the loop; ``cancel_all`` -- the
    teardown path -- disarms it for real, leaving zero live timers.
    """

    __slots__ = ("_loop", "_heap", "_seq", "_timer", "_live", "_dead",
                 "fires")

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._heap: List[Tuple[float, int, GroupTimer]] = []
        self._seq = itertools.count()
        self._timer: Optional[EventHandle] = None
        self._live = 0
        self._dead = 0
        #: Loop-timer firings so far (telemetry: timer events per message).
        self.fires = 0

    @property
    def live(self) -> int:
        """Live (not-yet-fired, not-cancelled) deadlines in the group."""
        return self._live

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        # Without this, __len__ would make an *empty* group falsy --
        # and ``group or loop`` fallbacks would silently skip it.
        return True

    @property
    def armed(self) -> bool:
        """Whether the group currently holds a loop timer."""
        return self._timer is not None and not self._timer.cancelled

    def call_at(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> GroupTimer:
        """Run ``callback(*args)`` at simulated time ``when`` (clamped to
        now)."""
        now = self._loop._now
        if when < now:
            when = now
        entry = GroupTimer(when, next(self._seq), callback, args, self)
        heapq.heappush(self._heap, (when, entry._seq, entry))
        self._live += 1
        # Keep the loop timer armed at the heap front (the new entry is
        # not necessarily the front when scheduling re-enters mid-fire).
        front = self._heap[0][0]
        timer = self._timer
        if timer is None or timer.cancelled:
            self._timer = self._loop.call_at(front, self._fire)
        elif front < timer.time:
            timer.cancel()
            self._timer = self._loop.call_at(front, self._fire)
        return entry

    def call_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> GroupTimer:
        """Run ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self.call_at(self._loop._now + delay, callback, *args)

    def _note_cancel(self) -> None:
        self._live -= 1
        self._dead += 1
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        if not self._live:
            # Lazily disarmed: the loop timer stays armed and fires as a
            # no-op (or rearms at whatever is live by then).  Schedule/
            # cancel churn -- the dominant pattern for retransmit and
            # flush deadlines -- then never touches the loop at all.
            self._dead = 0
            del heap[:]
            return
        if self._dead > self._live:
            live_entries = [e for e in heap if not e[2]._cancelled]
            heap[:] = live_entries
            heapq.heapify(heap)
            self._dead = 0

    def _fire(self) -> None:
        self._timer = None
        self.fires += 1
        heap = self._heap
        now = self._loop._now
        while heap and heap[0][0] <= now:
            entry = heapq.heappop(heap)[2]
            if entry._cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            entry._group = None
            callback, args = entry._callback, entry._args
            entry._callback = _noop
            entry._args = ()
            callback(*args)
        if heap and (self._timer is None or self._timer.cancelled):
            self._timer = self._loop.call_at(heap[0][0], self._fire)

    def cancel_all(self) -> None:
        """Cancel every pending deadline and disarm the loop timer."""
        for _, _, entry in self._heap:
            if not entry._cancelled:
                entry._cancelled = True
                entry._callback = _noop
                entry._args = ()
                entry._group = None
        del self._heap[:]
        self._live = 0
        self._dead = 0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def __repr__(self) -> str:
        return f"<TimerGroup live={self._live} armed={self.armed}>"


class Signal:
    """A broadcast event: listeners subscribe, ``fire`` notifies them all.

    Used for RMS failure notification (basic property 3 of section 2) and
    for decoupled delivery hooks.  Listeners added during a ``fire`` are
    not invoked until the next ``fire``.
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._listeners: List[Callable[..., None]] = []
        self.fire_count = 0

    def listen(self, callback: Callable[..., None]) -> Callable[[], None]:
        """Subscribe; returns an unsubscribe function."""
        self._listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, *args: Any) -> None:
        """Invoke every current listener synchronously with ``args``."""
        self.fire_count += 1
        for callback in list(self._listeners):
            callback(*args)

    def fire_soon(self, *args: Any) -> None:
        """Invoke listeners via the event loop (next same-time slot)."""
        self._loop.call_soon(self.fire, *args)

    def __len__(self) -> int:
        return len(self._listeners)
