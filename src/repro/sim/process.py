"""Generator-based simulated processes.

Protocol state machines in this library are mostly callback-driven, but
workload generators and test drivers read much better as sequential code.
A :class:`Process` wraps a generator that yields:

- a ``float``/``int`` -- sleep for that many simulated seconds;
- a :class:`Future` -- suspend until the future resolves; ``yield``
  evaluates to the future's result (or raises its exception);
- ``None`` -- yield the scheduler for one same-time slot.

The sender flow control of section 4.4 ("a sender blocks when a port
queue size limit is reached") is expressed by yielding the future that a
flow-controlled port hands out.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.errors import ProcessError
from repro.sim.events import EventLoop

__all__ = ["Future", "Process", "all_of"]


_PENDING = "pending"
_DONE = "done"
_FAILED = "failed"


class Future:
    """A single-assignment result that callbacks or processes can await."""

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop
        self._state = _PENDING
        self._value: Any = None
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._state != _PENDING

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    def result(self) -> Any:
        """The resolved value; raises the stored exception on failure."""
        if self._state == _PENDING:
            raise ProcessError("future is not resolved yet")
        if self._state == _FAILED:
            raise self._value
        return self._value

    def set_result(self, value: Any = None) -> None:
        self._resolve(_DONE, value)

    def set_exception(self, exc: BaseException) -> None:
        if not isinstance(exc, BaseException):
            raise ProcessError(f"not an exception: {exc!r}")
        self._resolve(_FAILED, exc)

    def _resolve(self, state: str, value: Any) -> None:
        if self._state != _PENDING:
            raise ProcessError("future resolved twice")
        self._state = state
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._loop.call_soon(callback, self)

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` once resolved (immediately if already)."""
        if self._state != _PENDING:
            self._loop.call_soon(callback, self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:
        return f"<Future {self._state}>"


def all_of(loop: EventLoop, futures: List[Future]) -> Future:
    """A future resolving to the list of results once every input resolves.

    Fails as soon as any input fails.
    """
    combined = Future(loop)
    remaining = len(futures)
    if remaining == 0:
        combined.set_result([])
        return combined

    def on_done(_: Future) -> None:
        nonlocal remaining
        if combined.done:
            return
        for future in futures:
            if future.done and future.failed:
                combined.set_exception(future._value)
                return
        remaining -= 1
        if remaining == 0:
            combined.set_result([future.result() for future in futures])

    for future in futures:
        future.add_done_callback(on_done)
    return combined


class Process:
    """Drives a generator as a simulated process.

    The process starts at the current simulated time (same-time slot).
    Its :attr:`finished` future resolves with the generator's return
    value, or fails with its uncaught exception.
    """

    def __init__(
        self,
        loop: EventLoop,
        generator: Generator[Any, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise ProcessError(f"Process needs a generator, got {generator!r}")
        self._loop = loop
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = Future(loop)
        self._stopped = False
        loop.call_soon(self._step, None, None)

    @property
    def done(self) -> bool:
        return self.finished.done

    def stop(self, exc: Optional[BaseException] = None) -> None:
        """Terminate the process by throwing into the generator.

        With no exception given, the generator is closed and the process
        finishes with result ``None``.
        """
        if self.finished.done or self._stopped:
            return
        self._stopped = True
        if exc is None:
            self._generator.close()
            self.finished.set_result(None)
        else:
            self._loop.call_soon(self._step, None, exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.finished.done:
            return
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished.set_result(getattr(stop, "value", None))
            return
        except BaseException as error:  # noqa: BLE001 - propagate to future
            self.finished.set_exception(error)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if yielded is None:
            self._loop.call_soon(self._step, None, None)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                self._loop.call_soon(
                    self._step, None, ProcessError(f"negative sleep {yielded!r}")
                )
            else:
                self._loop.call_after(float(yielded), self._step, None, None)
        elif isinstance(yielded, Future):
            yielded.add_done_callback(self._on_future)
        else:
            self._loop.call_soon(
                self._step,
                None,
                ProcessError(f"process yielded unsupported value {yielded!r}"),
            )

    def _on_future(self, future: Future) -> None:
        if future.failed:
            self._step(None, future._value)
        else:
            self._step(future.result(), None)

    def __repr__(self) -> str:
        state = "done" if self.done else "running"
        return f"<Process {self.name} {state}>"
