"""Seeded random-number streams.

Every stochastic component (bit-error models, workload interarrivals,
statistical admission) draws from a named substream derived from one
master seed, so experiments are reproducible and components can be
added or removed without perturbing each other's draws.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The RNG for ``name``, created on first use.

        The substream seed is a hash of the master seed and the name, so
        the draw sequence of one stream is independent of how many other
        streams exist.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        digest = hashlib.sha256(
            f"{self.master_seed}/child:{name}".encode("utf-8")
        ).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.master_seed} streams={len(self._streams)}>"
