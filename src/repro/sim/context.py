"""Simulation context: one bundle of clock, randomness, and tracing.

Every layer of the reproduced DASH stack receives a :class:`SimContext`
instead of reaching for globals, so several independent simulations can
coexist in one Python process (the benchmark harness relies on this).
"""

from __future__ import annotations

from typing import Optional, Set, Union

from repro.obs import NullObservability, Observability
from repro.sim.events import EventLoop, Signal
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer

__all__ = ["SimContext"]


class SimContext:
    """The shared substrate of one simulation run."""

    def __init__(
        self,
        seed: int = 0,
        trace: bool = False,
        trace_categories: Optional[Set[str]] = None,
        observe: bool = False,
        obs: Optional[Union[Observability, NullObservability]] = None,
    ) -> None:
        self.loop = EventLoop()
        self.rng = RandomStreams(seed)
        self.tracer: Union[Tracer, NullTracer]
        if trace:
            self.tracer = Tracer(self.loop, trace_categories)
        else:
            self.tracer = NullTracer()
        #: Metrics registry + span tracer; a stateless null facade unless
        #: ``observe=True`` (or a prebuilt facade is injected).
        self.obs: Union[Observability, NullObservability]
        if obs is not None:
            self.obs = obs
        elif observe:
            self.obs = Observability(self.loop)
        else:
            self.obs = NullObservability()

    @property
    def now(self) -> float:
        # Reads the loop's clock directly: this property is on every hot
        # path and the extra ``loop.now`` property hop is measurable.
        return self.loop._now

    def spawn(self, generator, name: Optional[str] = None) -> Process:
        """Start a generator as a simulated process."""
        return Process(self.loop, generator, name)

    def signal(self) -> Signal:
        return Signal(self.loop)

    def run(self, until: Optional[float] = None) -> float:
        return self.loop.run(until=until)

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        return self.loop.run_until_idle(max_events=max_events)

    def __repr__(self) -> str:
        return f"<SimContext now={self.now:.6f} seed={self.rng.master_seed}>"
