"""Simulation context: one bundle of clock, randomness, and tracing.

Every layer of the reproduced DASH stack receives a :class:`SimContext`
instead of reaching for globals, so several independent simulations can
coexist in one Python process (the benchmark harness relies on this).
"""

from __future__ import annotations

from typing import Optional, Set, Union

from repro.errors import ParameterError
from repro.obs import NullObservability, Observability
from repro.sim.events import DEFAULT_IDLE_MAX_EVENTS, EventLoop, Signal
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, Tracer

__all__ = ["SimContext"]


class SimContext:
    """The shared substrate of one simulation run."""

    def __init__(
        self,
        seed: int = 0,
        trace: bool = False,
        trace_categories: Optional[Set[str]] = None,
        observe: bool = False,
        obs: Optional[Union[Observability, NullObservability]] = None,
        batch_dispatch: bool = True,
    ) -> None:
        self.loop = EventLoop(batch_dispatch=batch_dispatch)
        self.rng = RandomStreams(seed)
        self.tracer: Union[Tracer, NullTracer]
        if trace:
            self.tracer = Tracer(self.loop, trace_categories)
        else:
            self.tracer = NullTracer()
        #: Metrics registry + span tracer; a stateless null facade unless
        #: ``observe=True`` (or a prebuilt facade is injected).
        self.obs: Union[Observability, NullObservability]
        if obs is not None:
            self.obs = obs
        elif observe:
            self.obs = Observability(self.loop)
        else:
            self.obs = NullObservability()

    @property
    def now(self) -> float:
        # Reads the loop's clock directly: this property is on every hot
        # path and the extra ``loop.now`` property hop is measurable.
        return self.loop._now

    def spawn(self, generator, name: Optional[str] = None) -> Process:
        """Start a generator as a simulated process."""
        return Process(self.loop, generator, name)

    def signal(self) -> Signal:
        return Signal(self.loop)

    def run(
        self,
        until: Optional[float] = None,
        *,
        while_pending: bool = False,
        idle_grace: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drive the simulation: the one keyword-selected entry point.

        ``run(until=t)`` runs every event with time <= t; ``run
        (while_pending=True)`` drains the loop in a single call, stopping
        early when ``idle_grace`` is given and the next live event lies
        further than that past the clock.
        """
        if while_pending:
            if until is not None:
                raise ParameterError(
                    "run() takes either until or while_pending=True, not both"
                )
            return self.loop.run_while_pending(
                idle_grace=idle_grace, max_events=max_events
            )
        if idle_grace is not None:
            raise ParameterError("idle_grace requires while_pending=True")
        return self.loop.run(until=until, max_events=max_events)

    def run_until_idle(self, max_events: int = DEFAULT_IDLE_MAX_EVENTS) -> float:
        return self.loop.run_until_idle(max_events=max_events)

    def __repr__(self) -> str:
        return f"<SimContext now={self.now:.6f} seed={self.rng.master_seed}>"
