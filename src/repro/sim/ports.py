"""Ports: passive message receivers, optionally flow controlled.

Section 2 of the paper: "The receiver is typically a passive object such
as a port; a message is considered delivered when it is enqueued on the
port or given to a process waiting at the port."

Section 4.4 uses "a flow controlled local IPC port" between a sending
process and its send protocol: "A sender blocks when a port queue size
limit is reached."  :class:`FlowControlledPort` implements exactly that:
``put`` returns a future that resolves once the item is accepted, and a
process that yields the future blocks until then.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import EventLoop
from repro.sim.process import Future

__all__ = ["Port", "FlowControlledPort"]


class Port:
    """An unbounded passive mailbox.

    ``deliver`` enqueues an item (or hands it directly to a waiting
    ``get`` future).  An optional ``on_deliver`` callback supports
    callback-style protocol receivers.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str = "port",
        on_deliver: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self._loop = loop
        self.name = name
        self._queue: Deque[Any] = deque()
        self._getters: Deque[Future] = deque()
        self._on_deliver = on_deliver
        self.delivered_count = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def set_handler(self, on_deliver: Optional[Callable[[Any], None]]) -> None:
        """Switch to callback delivery; queued items are replayed first."""
        self._on_deliver = on_deliver
        if on_deliver is not None:
            while self._queue:
                on_deliver(self._queue.popleft())

    def deliver(self, item: Any) -> None:
        """Deliver ``item``: wake a waiting getter or enqueue."""
        self.delivered_count += 1
        if self._on_deliver is not None:
            self._on_deliver(item)
            return
        if self._getters:
            self._getters.popleft().set_result(item)
        else:
            self._queue.append(item)

    def get(self) -> Future:
        """A future resolving to the next delivered item (FIFO order)."""
        if self._on_deliver is not None:
            raise SimulationError(f"port {self.name} is callback-driven")
        future = Future(self._loop)
        if self._queue:
            future.set_result(self._queue.popleft())
        else:
            self._getters.append(future)
        return future

    def get_nowait(self) -> Any:
        """Pop the next item immediately; raises if the port is empty."""
        if not self._queue:
            raise SimulationError(f"port {self.name} is empty")
        return self._queue.popleft()

    def drain(self) -> List[Any]:
        """Remove and return all queued items."""
        items = list(self._queue)
        self._queue.clear()
        return items

    def __repr__(self) -> str:
        return f"<Port {self.name} queued={len(self._queue)}>"


class FlowControlledPort:
    """A bounded mailbox whose producers block when it is full.

    This is the paper's sender-flow-control primitive (section 4.4): the
    consumer (a send protocol) ``take``s items at its own pace; while the
    queue is at ``limit``, each ``put`` future stays pending and the
    producing process is suspended.
    """

    def __init__(self, loop: EventLoop, limit: int, name: str = "fcport") -> None:
        if limit < 1:
            raise SimulationError(f"port limit must be >= 1, got {limit}")
        self._loop = loop
        self.limit = limit
        self.name = name
        self._queue: Deque[Any] = deque()
        self._putters: Deque[Tuple[Any, Future]] = deque()
        self._getters: Deque[Future] = deque()
        self.blocked_puts = 0
        self.total_puts = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.limit

    def put(self, item: Any) -> Future:
        """Offer ``item``; the returned future resolves when accepted."""
        self.total_puts += 1
        future = Future(self._loop)
        if self._getters:
            self._getters.popleft().set_result(item)
            future.set_result(None)
        elif len(self._queue) < self.limit:
            self._queue.append(item)
            future.set_result(None)
        else:
            self.blocked_puts += 1
            self._putters.append((item, future))
        return future

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False instead of queueing the producer."""
        self.total_puts += 1
        if self._getters:
            self._getters.popleft().set_result(item)
            return True
        if len(self._queue) < self.limit:
            self._queue.append(item)
            return True
        return False

    def take(self) -> Future:
        """A future resolving to the next item; admits one blocked putter."""
        future = Future(self._loop)
        if self._queue:
            future.set_result(self._queue.popleft())
            self._admit_putter()
        elif self._putters:
            item, put_future = self._putters.popleft()
            future.set_result(item)
            put_future.set_result(None)
        else:
            self._getters.append(future)
        return future

    def _admit_putter(self) -> None:
        if self._putters and len(self._queue) < self.limit:
            item, put_future = self._putters.popleft()
            self._queue.append(item)
            put_future.set_result(None)

    def drain(self) -> List[Any]:
        """Remove and return all queued items (blocked putters stay put)."""
        items = list(self._queue)
        self._queue.clear()
        return items

    def __repr__(self) -> str:
        return (
            f"<FlowControlledPort {self.name} queued={len(self._queue)}/"
            f"{self.limit} blocked={len(self._putters)}>"
        )
