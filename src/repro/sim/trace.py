"""Structured tracing for simulations.

A :class:`Tracer` records ``(time, category, event, fields)`` tuples.
Tests assert against traces; benchmarks keep tracing off for speed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Set

from repro.errors import ParameterError
from repro.sim.events import EventLoop

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{key}={value!r}" for key, value in self.fields.items())
        return f"[{self.time:12.6f}] {self.category}.{self.event} {detail}".rstrip()


class Tracer:
    """Records trace entries, optionally filtered by category.

    ``keep`` selects what happens once ``max_records`` is reached:
    ``"head"`` (the default) keeps the earliest records and drops new
    ones; ``"tail"`` runs the buffer as a ring, evicting the oldest
    record to admit each new one.  Either way ``dropped`` counts the
    records lost.
    """

    def __init__(
        self,
        loop: EventLoop,
        categories: Optional[Set[str]] = None,
        max_records: int = 1_000_000,
        keep: str = "head",
    ) -> None:
        if keep not in ("head", "tail"):
            raise ParameterError(f"keep must be 'head' or 'tail': {keep!r}")
        self._loop = loop
        self._categories = categories
        self._max_records = max_records
        self.keep = keep
        self.records: Deque[TraceRecord] = deque()
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return True

    def wants(self, category: str) -> bool:
        return self._categories is None or category in self._categories

    def record(self, category: str, event: str, **fields: Any) -> None:
        if not self.wants(category):
            return
        if len(self.records) >= self._max_records:
            self.dropped += 1
            if self.keep == "head":
                return
            self.records.popleft()  # ring buffer: oldest makes room
        self.records.append(TraceRecord(self._loop.now, category, event, fields))

    def select(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given category and/or event."""
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if event is not None and record.event != event:
                continue
            yield record

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        return sum(1 for _ in self.select(category, event))

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def dump(self) -> str:
        return "\n".join(str(record) for record in self.records)


class NullTracer:
    """A tracer that records nothing; the default for benchmarks."""

    def __init__(self) -> None:
        # Per-instance, never class-level: a shared mutable list would
        # leak state across every simulation using the null tracer.
        self.records: List[TraceRecord] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return False

    def wants(self, category: str) -> bool:
        return False

    def record(self, category: str, event: str, **fields: Any) -> None:
        return None

    def select(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        return iter(())

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        return 0

    def clear(self) -> None:
        return None

    def dump(self) -> str:
        return ""
