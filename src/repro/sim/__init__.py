"""Discrete-event simulation substrate for the DASH/RMS reproduction."""

from repro.sim.context import SimContext
from repro.sim.events import EventHandle, EventLoop, Signal
from repro.sim.ports import FlowControlledPort, Port
from repro.sim.process import Future, Process, all_of
from repro.sim.rng import RandomStreams
from repro.sim.trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "EventHandle",
    "EventLoop",
    "FlowControlledPort",
    "Future",
    "NullTracer",
    "Port",
    "Process",
    "RandomStreams",
    "Signal",
    "SimContext",
    "TraceRecord",
    "Tracer",
    "all_of",
]
