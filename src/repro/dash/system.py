"""DashSystem: one-call construction of a simulated distributed system.

The benchmark harness and the examples all start from here: build a
context, one or more networks, and a set of DASH nodes sharing a key
realm -- the whole Figure-2 architecture, ready to run.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, Union

from repro.core.params import RmsParams, RmsRequest
from repro.dash._deprecation import warn_once
from repro.errors import NetworkError, ParameterError
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.session import (
    RkomSession,
    Session,
    StSession,
    TransportSession,
)
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.network import Network
from repro.netsim.topology import (
    Mesh,
    build_grid,
    build_star_of_routers,
    build_two_tier,
)
from repro.sched.cpu import CpuCostModel
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.sim.events import DEFAULT_IDLE_MAX_EVENTS
from repro.subtransport.config import StConfig
from repro.dash.node import DashNode
from repro.transport.rkom import RkomConfig
from repro.transport.stream import StreamConfig

__all__ = ["DashSystem"]


class DashSystem:
    """A complete simulated DASH deployment."""

    def __init__(
        self,
        seed: int = 0,
        trace: bool = False,
        st_config: Optional[StConfig] = None,
        rkom_config: Optional[RkomConfig] = None,
        cpu_policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
        observe: bool = False,
        batch_dispatch: bool = True,
    ) -> None:
        self.context = SimContext(
            seed=seed, trace=trace, observe=observe,
            batch_dispatch=batch_dispatch,
        )
        self.keys = KeyRegistry()
        self.networks: Dict[str, Network] = {}
        self.nodes: Dict[str, DashNode] = {}
        self.st_config = st_config
        self.rkom_config = rkom_config
        self.cpu_policy = cpu_policy
        self.cost_model = cost_model
        self._connect_ids = itertools.count(1)
        self._rkom_sessions: Dict[Tuple[str, str], RkomSession] = {}

    # -- construction -------------------------------------------------------

    def add_ethernet(self, name: str = "ether0", **kwargs) -> EthernetNetwork:
        network = EthernetNetwork(self.context, name=name, **kwargs)
        self.networks[name] = network
        return network

    def add_internet(self, name: str = "internet0", **kwargs) -> InternetNetwork:
        network = InternetNetwork(self.context, name=name, **kwargs)
        self.networks[name] = network
        return network

    #: Mesh builders :meth:`add_mesh` knows by name.
    _MESH_BUILDERS = {
        "grid": build_grid,
        "star": build_star_of_routers,
        "two_tier": build_two_tier,
    }

    def add_mesh(
        self,
        kind: str = "grid",
        name: str = "mesh0",
        st_config: Optional[StConfig] = None,
        network_kwargs: Optional[Dict] = None,
        ecmp: Optional[bool] = None,
        **builder_kwargs,
    ) -> Tuple[InternetNetwork, Mesh]:
        """An internet router fabric with one DASH node per host slot.

        ``kind`` picks a :mod:`repro.netsim.topology` builder (``grid``,
        ``star``, ``two_tier``); ``builder_kwargs`` go to it (``rows``/
        ``cols``, ``arms``, ``spines``/``leaves``, ``hosts_per_*``,
        ``spec``...).  Every host slot becomes a full :class:`DashNode`
        attached only to the mesh network.  ``ecmp=True`` spreads
        distinct flows across equal-cost trunks (shorthand for the
        ``InternetNetwork`` flag of the same name; ``two_tier`` is the
        fabric with real path diversity to exploit).
        """
        try:
            builder = self._MESH_BUILDERS[kind]
        except KeyError:
            raise NetworkError(
                f"unknown mesh kind {kind!r}; one of "
                f"{sorted(self._MESH_BUILDERS)}"
            ) from None
        network_kwargs = dict(network_kwargs or {})
        if ecmp is not None:
            network_kwargs["ecmp"] = ecmp
        network = self.add_internet(name, **network_kwargs)

        def attach_node(net: Network, host_name: str) -> str:
            self.add_node(host_name, network_names=[name], st_config=st_config)
            return host_name

        mesh = builder(network, attach_host=attach_node, **builder_kwargs)
        return network, mesh

    def add_node(
        self,
        name: str,
        network_names: Optional[List[str]] = None,
        st_config: Optional[StConfig] = None,
    ) -> DashNode:
        """Create a node attached to the named networks (default: all)."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        if network_names is None:
            networks = list(self.networks.values())
        else:
            networks = [self.networks[n] for n in network_names]
        if not networks:
            raise NetworkError("add a network before adding nodes")
        node = DashNode(
            self.context,
            name,
            networks,
            key_registry=self.keys,
            st_config=st_config or self.st_config,
            rkom_config=self.rkom_config,
            cpu_policy=self.cpu_policy,
            cost_model=self.cost_model,
        )
        node.system = self
        self.nodes[name] = node
        return node

    def _node(self, endpoint: Union[str, DashNode]) -> DashNode:
        if isinstance(endpoint, DashNode):
            endpoint = endpoint.name
        try:
            return self.nodes[endpoint]
        except KeyError:
            raise NetworkError(f"no node named {endpoint!r}") from None

    # -- conveniences -----------------------------------------------------------

    def connect(
        self,
        sender: Union[str, DashNode],
        receiver: Union[str, DashNode],
        *,
        desired: Optional[RmsParams] = None,
        acceptable: Optional[RmsParams] = None,
        request: Optional[RmsRequest] = None,
        kind: str = "st",
        resilience: Optional[ResiliencePolicy] = None,
        port: Optional[str] = None,
        fast_ack: bool = False,
        config: Optional[StreamConfig] = None,
        name: Optional[str] = None,
    ) -> Session:
        """The one way to open a channel between two nodes.

        Returns a :class:`~repro.resilience.session.Session` handle
        (``send``/``close``/context manager/``on_state_change``); its
        ``established`` future resolves to the underlying channel once
        it is up.  ``kind`` selects the channel: a raw subtransport RMS
        (``"st"``), a reliable byte stream (``"stream"``), or RKOM
        request/reply (``"rkom"``, one shared session per node pair).
        Passing a :class:`ResiliencePolicy` as ``resilience`` puts the
        channel under supervision: automatic re-establishment, failover
        across attached networks, and parameter degradation.
        """
        sender_node = self._node(sender)
        receiver_node = self._node(receiver)
        if kind == "st":
            req = RmsRequest.of(
                desired=desired, acceptable=acceptable, request=request
            )
            port_name = port or f"connect-{next(self._connect_ids)}"
            return StSession(
                self.context,
                sender_node.st,
                receiver_node.name,
                port=port_name,
                request=req,
                policy=resilience,
                fast_ack=fast_ack,
                name=name
                or f"{sender_node.name}->{receiver_node.name}:{port_name}",
            )
        if kind == "stream":
            if config is None and (desired is not None or request is not None):
                # Honor the unified signature: derive the stream's data
                # parameters from the desired set.
                req = RmsRequest.of(
                    desired=desired, acceptable=acceptable, request=request
                )
                config = StreamConfig(
                    data_capacity=req.desired.capacity,
                    data_max_message=req.desired.max_message_size,
                    data_delay_bound=(
                        None
                        if req.desired.delay_bound.is_unbounded
                        else req.desired.delay_bound.a
                    ),
                )
            return TransportSession(
                self.context,
                sender_node.st,
                receiver_node.st,
                config=config,
                policy=resilience,
                name=name or f"{sender_node.name}~{receiver_node.name}:stream",
            )
        if kind == "rkom":
            if desired is not None or acceptable is not None or request is not None:
                raise ParameterError(
                    "rkom sessions take their parameters from RkomConfig"
                )
            key = (sender_node.name, receiver_node.name)
            session = self._rkom_sessions.get(key)
            if session is None or session.state.value == "closed":
                session = RkomSession(
                    self.context,
                    sender_node.rkom,
                    receiver_node.name,
                    policy=resilience,
                    name=name or f"{sender_node.name}~{receiver_node.name}:rkom",
                )
                self._rkom_sessions[key] = session
            return session
        raise ParameterError(f"unknown session kind {kind!r}")

    def open_stream(self, sender: str, receiver: str, config: Optional[StreamConfig] = None):
        """Deprecated: use :meth:`connect` with ``kind="stream"``.

        Kept as a thin shim: returns the session's ``established``
        future, which resolves to the raw
        :class:`~repro.transport.stream.StreamSession` exactly as the
        old entry point did.
        """
        warn_once(
            "DashSystem.open_stream",
            "DashSystem.open_stream is deprecated; use "
            "DashSystem.connect(sender, receiver, kind='stream')",
        )
        return self.connect(sender, receiver, kind="stream", config=config).established

    def run(
        self,
        until: Optional[float] = None,
        *,
        while_pending: bool = False,
        idle_grace: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drive the simulated system: the one entry point.

        - ``run(until=t)`` -- execute every event with time <= t and
          leave the clock exactly at ``t``.
        - ``run(while_pending=True)`` -- drain the whole schedule in one
          call (the old ``run_until_idle``); raises
          :class:`~repro.errors.SchedulingError` if ``max_events``
          (default ``DEFAULT_IDLE_MAX_EVENTS``) runs out first.
        - ``run(while_pending=True, idle_grace=g)`` -- stop as soon as
          the next live event lies more than ``g`` seconds beyond the
          clock, so workloads with far-out housekeeping (chaos schedules,
          lazily-disarmed coalesced timers) still terminate.
        """
        return self.context.run(
            until=until, while_pending=while_pending,
            idle_grace=idle_grace, max_events=max_events,
        )

    def run_until_idle(self, max_events: int = DEFAULT_IDLE_MAX_EVENTS) -> float:
        """Deprecated: use :meth:`run` with ``while_pending=True``."""
        warn_once(
            "DashSystem.run_until_idle",
            "DashSystem.run_until_idle is deprecated; use "
            "DashSystem.run(while_pending=True, max_events=...)",
        )
        return self.run(while_pending=True, max_events=max_events)

    @property
    def now(self) -> float:
        return self.context.now

    @property
    def obs(self):
        """The context's observability facade (Null when disabled)."""
        return self.context.obs

    def __repr__(self) -> str:
        return (
            f"<DashSystem nodes={sorted(self.nodes)} "
            f"networks={sorted(self.networks)}>"
        )
