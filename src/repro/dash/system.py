"""DashSystem: one-call construction of a simulated distributed system.

The benchmark harness and the examples all start from here: build a
context, one or more networks, and a set of DASH nodes sharing a key
realm -- the whole Figure-2 architecture, ready to run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import NetworkError
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.network import Network
from repro.sched.cpu import CpuCostModel
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.config import StConfig
from repro.dash.node import DashNode
from repro.transport.rkom import RkomConfig
from repro.transport.stream import StreamConfig, open_stream

__all__ = ["DashSystem"]


class DashSystem:
    """A complete simulated DASH deployment."""

    def __init__(
        self,
        seed: int = 0,
        trace: bool = False,
        st_config: Optional[StConfig] = None,
        rkom_config: Optional[RkomConfig] = None,
        cpu_policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
        observe: bool = False,
    ) -> None:
        self.context = SimContext(seed=seed, trace=trace, observe=observe)
        self.keys = KeyRegistry()
        self.networks: Dict[str, Network] = {}
        self.nodes: Dict[str, DashNode] = {}
        self.st_config = st_config
        self.rkom_config = rkom_config
        self.cpu_policy = cpu_policy
        self.cost_model = cost_model

    # -- construction -------------------------------------------------------

    def add_ethernet(self, name: str = "ether0", **kwargs) -> EthernetNetwork:
        network = EthernetNetwork(self.context, name=name, **kwargs)
        self.networks[name] = network
        return network

    def add_internet(self, name: str = "internet0", **kwargs) -> InternetNetwork:
        network = InternetNetwork(self.context, name=name, **kwargs)
        self.networks[name] = network
        return network

    def add_node(
        self,
        name: str,
        network_names: Optional[List[str]] = None,
        st_config: Optional[StConfig] = None,
    ) -> DashNode:
        """Create a node attached to the named networks (default: all)."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        if network_names is None:
            networks = list(self.networks.values())
        else:
            networks = [self.networks[n] for n in network_names]
        if not networks:
            raise NetworkError("add a network before adding nodes")
        node = DashNode(
            self.context,
            name,
            networks,
            key_registry=self.keys,
            st_config=st_config or self.st_config,
            rkom_config=self.rkom_config,
            cpu_policy=self.cpu_policy,
            cost_model=self.cost_model,
        )
        self.nodes[name] = node
        return node

    # -- conveniences -----------------------------------------------------------

    def open_stream(self, sender: str, receiver: str, config: Optional[StreamConfig] = None):
        """Open a transport stream between two named nodes."""
        return open_stream(
            self.context,
            self.nodes[sender].st,
            self.nodes[receiver].st,
            config,
        )

    def run(self, until: Optional[float] = None) -> float:
        return self.context.run(until=until)

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        return self.context.run_until_idle(max_events=max_events)

    @property
    def now(self) -> float:
        return self.context.now

    @property
    def obs(self):
        """The context's observability facade (Null when disabled)."""
        return self.context.obs

    def __repr__(self) -> str:
        return (
            f"<DashSystem nodes={sorted(self.nodes)} "
            f"networks={sorted(self.networks)}>"
        )
