"""DASH node and system assembly (Figures 1-3 of the paper)."""

from repro.dash.node import DashNode
from repro.dash.system import DashSystem

__all__ = ["DashNode", "DashSystem"]
