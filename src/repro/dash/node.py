"""A DASH node: the layered kernel stack of Figures 1-3.

One :class:`DashNode` assembles, bottom-up: the machine-dependent part
(the host and its deadline-scheduled CPU), the network-dependent part
(attachments to network objects), the network-independent part (the
subtransport layer) and the kernel request/reply facility (RKOM).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.dash._deprecation import warn_once

from repro.netsim.network import Network
from repro.netsim.topology import Host
from repro.sched.cpu import CpuCostModel
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.config import StConfig
from repro.subtransport.st import SubtransportLayer
from repro.transport.rkom import RkomConfig, RkomService

__all__ = ["DashNode"]


class DashNode:
    """One host running the DASH communication stack."""

    def __init__(
        self,
        context: SimContext,
        name: str,
        networks: List[Network],
        key_registry: KeyRegistry,
        st_config: Optional[StConfig] = None,
        rkom_config: Optional[RkomConfig] = None,
        cpu_policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
    ) -> None:
        self.context = context
        self.name = name
        self.host = Host(context, name, cpu_policy=cpu_policy, cost_model=cost_model)
        for network in networks:
            network.attach(self.host)
        self.st = SubtransportLayer(
            context, self.host, networks, key_registry=key_registry, config=st_config
        )
        self.rkom = RkomService(context, self.st, config=rkom_config)
        #: Back-pointer set by DashSystem.add_node; the deprecated
        #: conveniences route through DashSystem.connect when present.
        self.system = None

    @property
    def cpu(self):
        return self.host.cpu

    @staticmethod
    def _peer_name(peer: Union["DashNode", str]) -> str:
        return peer.name if isinstance(peer, DashNode) else peer

    def create_st_rms(self, peer: Union["DashNode", str], **kwargs):
        """Deprecated: use ``DashSystem.connect(self, peer, kind="st")``.

        Forwards through the facade (returning the session's
        ``established`` future, which resolves to the ``StRms`` exactly
        as before) when the node belongs to a system; standalone nodes
        fall back to the subtransport layer directly.
        """
        warn_once(
            "DashNode.create_st_rms",
            "DashNode.create_st_rms is deprecated; use "
            "DashSystem.connect(sender, receiver, kind='st')",
        )
        peer_name = self._peer_name(peer)
        if self.system is None:
            return self.st.create_st_rms(peer_name, **kwargs)
        session = self.system.connect(
            self.name,
            peer_name,
            kind="st",
            port=kwargs.pop("port", "default"),
            desired=kwargs.pop("desired", None),
            acceptable=kwargs.pop("acceptable", None),
            request=kwargs.pop("request", None),
            fast_ack=kwargs.pop("fast_ack", False),
            **kwargs,
        )
        return session.established

    def call(self, peer: Union["DashNode", str], op: str, payload: bytes = b"", **kwargs):
        """Deprecated: use ``DashSystem.connect(self, peer, kind="rkom")``.

        Forwards through the facade's shared RKOM session (same reply
        future as before); standalone nodes fall back to the service.
        """
        warn_once(
            "DashNode.call",
            "DashNode.call is deprecated; use "
            "DashSystem.connect(sender, receiver, kind='rkom').call(op, ...)",
        )
        peer_name = self._peer_name(peer)
        if self.system is None:
            return self.rkom.call(peer_name, op, payload, **kwargs)
        session = self.system.connect(self.name, peer_name, kind="rkom")
        return session.call(op, payload, **kwargs)

    def __repr__(self) -> str:
        return f"<DashNode {self.name}>"
