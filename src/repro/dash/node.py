"""A DASH node: the layered kernel stack of Figures 1-3.

One :class:`DashNode` assembles, bottom-up: the machine-dependent part
(the host and its deadline-scheduled CPU), the network-dependent part
(attachments to network objects), the network-independent part (the
subtransport layer) and the kernel request/reply facility (RKOM).
"""

from __future__ import annotations

from typing import List, Optional

from repro.netsim.network import Network
from repro.netsim.topology import Host
from repro.sched.cpu import CpuCostModel
from repro.security.keys import KeyRegistry
from repro.sim.context import SimContext
from repro.subtransport.config import StConfig
from repro.subtransport.st import SubtransportLayer
from repro.transport.rkom import RkomConfig, RkomService

__all__ = ["DashNode"]


class DashNode:
    """One host running the DASH communication stack."""

    def __init__(
        self,
        context: SimContext,
        name: str,
        networks: List[Network],
        key_registry: KeyRegistry,
        st_config: Optional[StConfig] = None,
        rkom_config: Optional[RkomConfig] = None,
        cpu_policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
    ) -> None:
        self.context = context
        self.name = name
        self.host = Host(context, name, cpu_policy=cpu_policy, cost_model=cost_model)
        for network in networks:
            network.attach(self.host)
        self.st = SubtransportLayer(
            context, self.host, networks, key_registry=key_registry, config=st_config
        )
        self.rkom = RkomService(context, self.st, config=rkom_config)

    @property
    def cpu(self):
        return self.host.cpu

    def create_st_rms(self, peer: "DashNode", **kwargs):
        """Convenience: an ST RMS from this node to ``peer``."""
        return self.st.create_st_rms(peer.name, **kwargs)

    def call(self, peer: "DashNode", op: str, payload: bytes = b"", **kwargs):
        """Convenience: an RKOM call to ``peer``."""
        return self.rkom.call(peer.name, op, payload, **kwargs)

    def __repr__(self) -> str:
        return f"<DashNode {self.name}>"
