"""Warn-once machinery for the legacy creation entry points.

Each deprecated entry point warns exactly once per process (pytest
captures would otherwise drown in repeats); tests reset the registry via
:func:`reset_deprecation_warnings` to assert the warning fires.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["reset_deprecation_warnings", "warn_once"]

_WARNED: Set[str] = set()


def warn_once(key: str, message: str, stacklevel: int = 2) -> None:
    """Warn once per ``key``.

    ``stacklevel`` counts from the *shim* that calls this helper, like a
    direct ``warnings.warn`` there would: the default 2 attributes the
    warning to the shim's caller (this function adds one frame for
    itself).
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def reset_deprecation_warnings() -> None:
    """Forget which deprecation warnings already fired (for tests)."""
    _WARNED.clear()
