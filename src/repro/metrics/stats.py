"""Summary statistics for experiment results (pure Python, no numpy).

The benchmark harness reports mean/percentile delay, jitter, loss and
throughput series; keeping the math here self-contained makes the
library dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["percentile", "SummaryStats", "summarize"]


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1]: {fraction}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-style summary of one metric."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def scaled(self, factor: float) -> "SummaryStats":
        """A copy with every value multiplied (e.g. seconds -> ms)."""
        return SummaryStats(
            count=self.count,
            mean=self.mean * factor,
            stdev=self.stdev * factor,
            minimum=self.minimum * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            maximum=self.maximum * factor,
        )


_EMPTY = SummaryStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(values: Iterable[float]) -> SummaryStats:
    """Build a :class:`SummaryStats`; empty input gives all zeros."""
    data: List[float] = list(values)
    if not data:
        return _EMPTY
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((value - mean) ** 2 for value in data) / (count - 1)
    else:
        variance = 0.0
    return SummaryStats(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(data),
        p50=percentile(data, 0.50),
        p95=percentile(data, 0.95),
        p99=percentile(data, 0.99),
        maximum=max(data),
    )
