"""Plain-text table rendering for the benchmark harness.

Every bench prints the series the paper's claim predicts as an aligned
ASCII table, so ``pytest benchmarks/ --benchmark-only`` output doubles
as the EXPERIMENTS.md evidence.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "Table"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned table with a rule under the header."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


class Table:
    """Incrementally built table; ``print(table)`` renders it."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[Any]] = []

    def add_row(self, *cells: Any) -> None:
        self.rows.append(list(cells))

    def to_payload(self) -> dict:
        """The table as a JSON-ready mapping (for ``*.metrics.json``)."""
        return {
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
        }

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)
