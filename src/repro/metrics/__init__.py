"""Measurement and reporting utilities for experiments."""

from repro.metrics.collectors import (
    DeadlineScorecard,
    DelayRecorder,
    ThroughputMeter,
    rms_scorecard,
)
from repro.metrics.report import Table, format_table
from repro.metrics.stats import SummaryStats, percentile, summarize

__all__ = [
    "DeadlineScorecard",
    "DelayRecorder",
    "SummaryStats",
    "Table",
    "ThroughputMeter",
    "format_table",
    "percentile",
    "rms_scorecard",
    "summarize",
]
