"""Measurement collectors attached to streams and applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.rms import Rms
from repro.metrics.stats import SummaryStats, summarize

__all__ = ["DelayRecorder", "ThroughputMeter", "DeadlineScorecard", "rms_scorecard"]


class DelayRecorder:
    """Collects per-message delays (seconds)."""

    def __init__(self) -> None:
        self.delays: List[float] = []

    def record(self, delay: float) -> None:
        self.delays.append(delay)

    def record_message(self, message) -> None:
        if message.delay is not None:
            self.delays.append(message.delay)

    def summary(self) -> SummaryStats:
        return summarize(self.delays)

    def jitter(self) -> float:
        """Mean absolute successive delay difference."""
        if len(self.delays) < 2:
            return 0.0
        diffs = [
            abs(b - a) for a, b in zip(self.delays, self.delays[1:])
        ]
        return sum(diffs) / len(diffs)

    def __len__(self) -> int:
        return len(self.delays)


class ThroughputMeter:
    """Counts bytes over a window of simulated time."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.start_time = start_time
        self.bytes = 0
        self.messages = 0
        self.last_time: Optional[float] = None

    def record(self, size: int, now: float) -> None:
        self.bytes += size
        self.messages += 1
        self.last_time = now

    #: Minimum measurement window (seconds).  With bytes recorded at the
    #: very instant the meter started, the window is degenerate; the
    #: epsilon keeps the rate finite instead of reporting 0.
    MIN_WINDOW = 1e-9

    def throughput(self, end_time: Optional[float] = None) -> float:
        """Bytes per second from start to ``end_time`` (or last record)."""
        end = end_time if end_time is not None else self.last_time
        if end is None or self.bytes == 0:
            return 0.0
        if end < self.start_time:
            return 0.0
        return self.bytes / max(end - self.start_time, self.MIN_WINDOW)


@dataclass
class DeadlineScorecard:
    """Delivery-quality summary of one RMS (used across benches)."""

    sent: int
    delivered: int
    dropped: int
    late: int
    delay: SummaryStats

    @property
    def loss_rate(self) -> float:
        return self.dropped / self.sent if self.sent else 0.0

    @property
    def late_rate(self) -> float:
        return self.late / self.delivered if self.delivered else 0.0

    @property
    def on_time_fraction(self) -> float:
        if self.sent == 0:
            return 1.0
        return (self.delivered - self.late) / self.sent


def rms_scorecard(rms: Rms) -> DeadlineScorecard:
    """Snapshot an RMS's stats into a scorecard."""
    stats = rms.stats
    return DeadlineScorecard(
        sent=stats.messages_sent,
        delivered=stats.messages_delivered,
        dropped=stats.messages_dropped,
        late=stats.messages_late,
        delay=summarize(stats.delays),
    )
