"""Exception hierarchy for the DASH/RMS reproduction.

Every error raised by the library derives from :class:`ReproError` so that
clients can catch library failures without catching unrelated bugs.  The
sub-hierarchy mirrors the paper's separation between the simulation
substrate, the RMS abstraction itself, and the layered providers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A misuse or internal failure of the discrete-event simulator."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped event loop."""


class ProcessError(SimulationError):
    """A simulated process was driven incorrectly (e.g. resumed twice)."""


class RmsError(ReproError):
    """Base class for errors of the RMS abstraction (section 2)."""


class ParameterError(RmsError):
    """An RMS parameter set is malformed (section 2.1-2.3)."""


class NegotiationError(RmsError):
    """No compatible parameter set exists for a creation request (2.4)."""


class AdmissionError(RmsError):
    """The provider rejected an RMS creation request (section 2.3).

    Deterministic requests are rejected when worst-case demands cannot be
    met with free resources; statistical requests when the expected delay
    or error rate would be exceeded.  Best-effort requests are never
    rejected, so this error never applies to them.
    """


class RmsFailedError(RmsError):
    """The RMS has failed; clients are notified per basic property (3)."""


class CapacityError(RmsError):
    """A client violated the RMS capacity or maximum-message-size rule.

    The paper makes capacity enforcement a *client* responsibility
    (section 4.4); providers raise this only on hard, checkable limits
    such as the maximum message size.
    """


class MessageTooLargeError(CapacityError):
    """A message exceeded the RMS maximum message size (section 2.2)."""


class MultiplexingError(RmsError):
    """An ST RMS cannot legally be multiplexed onto a network RMS (4.2)."""


class SecurityError(ReproError):
    """Authentication or privacy machinery failed (section 2.1)."""


class AuthenticationError(SecurityError):
    """Peer authentication on the ST control channel failed (3.2)."""


class TransportError(ReproError):
    """A transport-protocol failure (RKOM or stream protocols, 3.3)."""


class RkomTimeoutError(TransportError):
    """An RKOM request exhausted its retransmissions without a reply."""


class NetworkError(ReproError):
    """A failure inside the simulated network substrate (3.1)."""


class RoutingError(NetworkError):
    """No route exists between two hosts of an internetwork."""
