"""Admission control for the three delay-bound types (section 2.3).

- *Deterministic*: "System resources (buffer space, media bandwidth) are
  allocated to individual RMS's.  The RMS provider rejects an RMS
  request if its worst-case demands cannot be met with free resources."
- *Statistical*: "An RMS creation request is rejected if either its
  expected message delay or its expected bit error rate ... is higher
  than acceptable."  Modeled with an effective-bandwidth reservation
  between average and peak load.
- *Best-effort*: "RMS creation requests are never rejected."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.params import DelayBoundType, RmsParams
from repro.errors import AdmissionError, ParameterError

__all__ = ["Reservation", "AdmissionController", "NULL_POOLS"]


@dataclass(frozen=True)
class Reservation:
    """Resources set aside for one admitted RMS."""

    rms_id: int
    bandwidth: float  # bytes per second
    buffer_bytes: int
    bound_type: DelayBoundType


class AdmissionController:
    """Tracks reservations against one pool of bandwidth and buffer.

    Ethernet uses one controller for its segment; an internetwork uses
    one per link, admitting along the whole path.
    """

    def __init__(
        self,
        total_bandwidth: float,
        total_buffer_bytes: int,
        deterministic_share: float = 1.0,
        statistical_share: float = 0.95,
        statistical_confidence_weight: float = 0.5,
        deterministic_guard: float = 1.5,
    ) -> None:
        if total_bandwidth <= 0 or total_buffer_bytes <= 0:
            raise ParameterError("admission pool must have positive resources")
        if not 0 < deterministic_share <= 1 or not 0 < statistical_share <= 1:
            raise ParameterError("shares must be in (0, 1]")
        self.total_bandwidth = total_bandwidth
        self.total_buffer_bytes = total_buffer_bytes
        self.deterministic_share = deterministic_share
        self.statistical_share = statistical_share
        self.statistical_confidence_weight = statistical_confidence_weight
        self.deterministic_guard = deterministic_guard
        self._reservations: Dict[int, Reservation] = {}
        self.admitted = 0
        self.rejected = 0

    # -- demand models -----------------------------------------------------

    def deterministic_demand(self, params: RmsParams) -> Tuple[float, int]:
        """Worst-case (bandwidth, buffer) demand of a deterministic RMS.

        A client honoring the capacity rule can keep ``capacity`` bytes
        in flight and refresh them every worst-case delay; the implied
        bandwidth of section 2.2 is the peak *sustained* demand.  Hard
        guarantees must also survive worst-case burst phasing across
        streams (every client releasing its full capacity at once), so
        the reservation carries a guard factor above the sustained rate.
        The capacity itself bounds the buffer the stream can occupy.
        """
        demand = params.implied_bandwidth() * self.deterministic_guard
        return demand, params.capacity

    def statistical_demand(self, params: RmsParams) -> Tuple[float, int]:
        """Effective (bandwidth, buffer) demand of a statistical RMS.

        Effective bandwidth interpolates between the average and peak
        load: the higher the requested delay probability, the closer to
        the peak the reservation sits.
        """
        spec = params.statistical
        if spec is None:
            raise ParameterError("statistical RMS without a StatisticalSpec")
        # Effective bandwidth sits between mean and peak: the higher the
        # requested delay probability, the closer to the peak, scaled by
        # a global conservatism weight well below the deterministic
        # worst case.
        weight = self.statistical_confidence_weight * spec.delay_probability
        effective = spec.average_load + (spec.peak_load - spec.average_load) * weight
        # Statistical streams share buffers; reserve only the burst slack.
        buffer_demand = min(params.capacity, int(spec.peak_load * 0.05) + 1)
        return effective, buffer_demand

    # -- pool accounting -----------------------------------------------------

    @property
    def reserved_bandwidth(self) -> float:
        return sum(r.bandwidth for r in self._reservations.values())

    @property
    def reserved_buffer(self) -> int:
        return sum(r.buffer_bytes for r in self._reservations.values())

    @property
    def free_bandwidth(self) -> float:
        return self.total_bandwidth - self.reserved_bandwidth

    def reservation_for(self, rms_id: int) -> Optional[Reservation]:
        return self._reservations.get(rms_id)

    # -- admission ------------------------------------------------------------

    def admit(self, rms_id: int, params: RmsParams) -> Reservation:
        """Admit or raise :class:`AdmissionError`.

        Best-effort streams are always admitted with an empty
        reservation.
        """
        if rms_id in self._reservations:
            raise AdmissionError(f"rms {rms_id} already has a reservation")
        bound_type = params.delay_bound_type
        if bound_type == DelayBoundType.BEST_EFFORT:
            reservation = Reservation(rms_id, 0.0, 0, bound_type)
        elif bound_type == DelayBoundType.DETERMINISTIC:
            bandwidth, buffer_bytes = self.deterministic_demand(params)
            limit = self.total_bandwidth * self.deterministic_share
            if self.reserved_bandwidth + bandwidth > limit + 1e-9:
                self.rejected += 1
                raise AdmissionError(
                    f"deterministic demand {bandwidth:.0f}B/s exceeds free "
                    f"bandwidth {limit - self.reserved_bandwidth:.0f}B/s"
                )
            if self.reserved_buffer + buffer_bytes > self.total_buffer_bytes:
                self.rejected += 1
                raise AdmissionError(
                    f"deterministic buffer demand {buffer_bytes}B exceeds free "
                    f"buffer {self.total_buffer_bytes - self.reserved_buffer}B"
                )
            reservation = Reservation(rms_id, bandwidth, buffer_bytes, bound_type)
        elif bound_type == DelayBoundType.STATISTICAL:
            bandwidth, buffer_bytes = self.statistical_demand(params)
            limit = self.total_bandwidth * self.statistical_share
            if self.reserved_bandwidth + bandwidth > limit + 1e-9:
                self.rejected += 1
                raise AdmissionError(
                    f"statistical effective demand {bandwidth:.0f}B/s exceeds "
                    f"free bandwidth {limit - self.reserved_bandwidth:.0f}B/s"
                )
            if self.reserved_buffer + buffer_bytes > self.total_buffer_bytes:
                self.rejected += 1
                raise AdmissionError("statistical buffer demand exceeds free buffer")
            reservation = Reservation(rms_id, bandwidth, buffer_bytes, bound_type)
        else:  # pragma: no cover - exhaustive over the enum
            raise ParameterError(f"unknown delay bound type {bound_type!r}")
        self._reservations[rms_id] = reservation
        self.admitted += 1
        return reservation

    def release(self, rms_id: int) -> None:
        """Free an RMS's reservation.  Idempotent."""
        self._reservations.pop(rms_id, None)

    def __repr__(self) -> str:
        return (
            f"<AdmissionController bw={self.reserved_bandwidth:.0f}/"
            f"{self.total_bandwidth:.0f}B/s buf={self.reserved_buffer}/"
            f"{self.total_buffer_bytes}B streams={len(self._reservations)}>"
        )


#: The shared pool list for hopless routes (src == dst): such a route
#: consumes no link resources, so networks used to fabricate a throwaway
#: ``AdmissionController(1.0, 1)`` on *every* empty-route call just to
#: satisfy the "at least one pool" contract.  One module-level instance
#: replaces them all: best-effort reservations on it are empty and keyed
#: by globally-unique RMS ids, and guaranteed-service requests reject
#: against its 1 B/s / 1 B totals exactly as the throwaways did.
NULL_POOLS = [AdmissionController(total_bandwidth=1.0, total_buffer_bytes=1)]
