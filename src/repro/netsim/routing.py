"""Scale-out routing: forwarding tables, compiled plans, scoped repair.

The internetwork's original resolver ran one Dijkstra per (src, dst)
pair on demand and cleared the *entire* route cache whenever any link
changed state.  At a handful of nodes that is invisible; at hundreds of
hosts over a router mesh with link churn it is an O(N^2) recompute storm
on the hot path.  This module amortizes and scopes that work:

* **Forwarding tables** -- one Dijkstra per *source* covers every
  destination at once (`ForwardingTable`: final distances plus the
  shortest-path-tree predecessor map).  Tables are built lazily and
  stamped with the engine epoch.  Because Dijkstra's relaxations are
  deterministic and a settled node's predecessor never changes after it
  is popped, the route reconstructed from a full-run table is *exactly*
  the route the per-pair early-exit search would have produced -- not
  merely cost-equal -- so fixed-seed traces on static topologies are
  byte-identical with the legacy resolver.

* **Compiled route plans** -- per (src, dst) a `RoutePlan` freezes the
  resolved `Link` sequence, the admission pools along it, the path
  profile (fixed and per-byte delay), and one pre-built deliver
  callback per hop.  Forwarding a frame does zero dict lookups and
  zero closure allocation: each hop is a tuple index plus an `is_up`
  test.  The per-frame drop callback rides on the frame itself
  (``Frame.on_drop``) instead of being captured per hop per frame.

* **Scoped invalidation** -- reverse indexes map each directed edge to
  the tables whose shortest-path tree uses it and the plans that
  traverse it.  A link going *down* only removes paths, so every
  cached route that avoids it is still shortest: only the indexed
  dependents are dropped.  A link coming *up* can improve any route,
  but only for sources where ``dist(src, u) + w(u, v) < dist(src, v)``
  -- an O(sources) probe against the cached distance maps identifies
  exactly those, and disjoint routes are untouched.

* **Fixed-topology fast path** -- none of the index bookkeeping runs
  until the first link state change.  A static topology (the common
  bench case) pays nothing for invalidation support; the first churn
  event falls back to one full invalidation and switches tracking on.

Known divergence (documented in DESIGN.md 8.7): after a link comes
back up, a surviving table may keep a cached route that *ties* a path
through the restored link; a from-scratch Dijkstra could tie-break the
other way.  Costs are always equal, and static topologies are exact.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, Dict, List, Set, Tuple

from repro.errors import RoutingError
from repro.netsim.admission import NULL_POOLS
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.internet import InternetNetwork

__all__ = ["ForwardingTable", "RoutePlan", "ForwardingEngine"]

_EdgeKey = Tuple[str, str]


class ForwardingTable:
    """One source's shortest paths to every reachable node."""

    __slots__ = ("src", "dist", "prev", "epoch")

    def __init__(
        self,
        src: str,
        dist: Dict[str, float],
        prev: Dict[str, str],
        epoch: int,
    ) -> None:
        self.src = src
        #: Final shortest distance per reachable node (reachability is a
        #: dict probe: ``dst in table.dist``).
        self.dist = dist
        #: Shortest-path-tree predecessor per reachable node (except the
        #: source itself); routes are reconstructed by walking it.
        self.prev = prev
        self.epoch = epoch

    def __repr__(self) -> str:
        return (
            f"<ForwardingTable src={self.src} reach={len(self.dist)} "
            f"epoch={self.epoch}>"
        )


class RoutePlan:
    """A compiled (src, dst) route: links, pools, deliver callbacks."""

    __slots__ = (
        "src", "dst", "route", "links", "pools", "delivers",
        "fixed_delay", "per_byte_delay", "epoch", "dead",
    )

    def __init__(self, src: str, dst: str, route: List[str], epoch: int) -> None:
        self.src = src
        self.dst = dst
        #: Node names, shared (never mutated): frames and RMSs reference
        #: this list directly instead of copying it per frame.
        self.route = route
        self.links: Tuple = ()
        self.pools: List = []
        self.delivers: Tuple = ()
        self.fixed_delay = 0.0
        self.per_byte_delay = 0.0
        self.epoch = epoch
        #: Set by scoped invalidation.  A dead plan is never handed out
        #: for new resolutions; frames of already-admitted RMSs keep
        #: forwarding on it (data follows the admitted route, and a
        #: downed on-route link fails the RMS through the usual path).
        self.dead = False

    def __repr__(self) -> str:
        state = "dead" if self.dead else "live"
        return f"<RoutePlan {self.src}->{self.dst} hops={len(self.links)} {state}>"


class ForwardingEngine:
    """Next-hop tables, compiled plans, and scoped invalidation for one
    :class:`~repro.netsim.internet.InternetNetwork`."""

    def __init__(self, network: "InternetNetwork") -> None:
        self.network = network
        self._tables: Dict[str, ForwardingTable] = {}
        self._plans: Dict[Tuple[str, str], RoutePlan] = {}
        #: Reverse indexes, maintained only once churn has been seen
        #: (the fixed-topology fast path skips this bookkeeping).
        self._edge_tables: Dict[_EdgeKey, Set[str]] = {}
        self._edge_plans: Dict[_EdgeKey, List[RoutePlan]] = {}
        self._src_plans: Dict[str, List[RoutePlan]] = {}
        self._track = False
        self.epoch = 0
        # Introspection counters (bench telemetry).
        self.table_builds = 0
        self.plan_compiles = 0
        self.scoped_table_drops = 0
        self.scoped_plan_drops = 0
        self.full_invalidations = 0

    # -- resolution ---------------------------------------------------------

    def table(self, src: str) -> ForwardingTable:
        """The forwarding table for ``src``, built lazily."""
        table = self._tables.get(src)
        if table is not None:
            return table
        return self._build_table(src)

    def _build_table(self, src: str) -> ForwardingTable:
        # One full-run Dijkstra: identical float operations, relaxation
        # order, and tie-breaking as the legacy per-pair search, minus
        # the early exit -- so reconstructed routes match it exactly.
        network = self.network
        weight_of = network._link_weight
        links = network._links
        adjacency = network._adjacency
        distances: Dict[str, float] = {src: 0.0}
        previous: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited: Set[str] = set()
        inf = float("inf")
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in adjacency.get(node, []):
                if (node, neighbor) not in links:
                    continue
                weight = weight_of(node, neighbor)
                if weight == inf:
                    continue
                candidate = dist + weight
                if candidate < distances.get(neighbor, inf):
                    distances[neighbor] = candidate
                    previous[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        table = ForwardingTable(src, distances, previous, self.epoch)
        self._tables[src] = table
        self.table_builds += 1
        network.route_resolutions += 1
        if self._track:
            edge_tables = self._edge_tables
            for node, prev_node in previous.items():
                edge_tables.setdefault((prev_node, node), set()).add(src)
        return table

    def plan(self, src: str, dst: str) -> RoutePlan:
        """The compiled plan for (src, dst); raises RoutingError."""
        key = (src, dst)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        network = self.network
        if not network._node_exists(src) or not network._node_exists(dst):
            raise RoutingError(f"unknown endpoint in {src}->{dst}")
        if src == dst:
            plan = RoutePlan(src, dst, [src], self.epoch)
            plan.pools = NULL_POOLS
            plan.delivers = ()
            self._plans[key] = plan
            self.plan_compiles += 1
            return plan
        table = self.table(src)
        if dst not in table.prev:
            raise RoutingError(f"no route from {src} to {dst} in {network.name}")
        route = [dst]
        prev = table.prev
        while route[-1] != src:
            route.append(prev[route[-1]])
        route.reverse()
        plan = RoutePlan(src, dst, route, self.epoch)
        links = []
        pools = []
        fixed = 0.0
        per_byte = 0.0
        for i in range(len(route) - 1):
            hop = (route[i], route[i + 1])
            link = network._links[hop]
            links.append(link)
            pool = network._pools.get(hop)
            if pool is not None:
                pools.append(pool)
            fixed += link.propagation_delay + link.transmission_time(
                FRAME_OVERHEAD_BYTES
            )
            per_byte += 1.0 / link.bandwidth
        plan.links = tuple(links)
        plan.pools = pools or NULL_POOLS
        plan.fixed_delay = fixed
        plan.per_byte_delay = per_byte
        plan.delivers = tuple(
            self._make_deliver(plan, i + 1) for i in range(len(links))
        )
        self._plans[key] = plan
        self.plan_compiles += 1
        if self._track:
            edge_plans = self._edge_plans
            for i in range(len(route) - 1):
                edge_plans.setdefault((route[i], route[i + 1]), []).append(plan)
            self._src_plans.setdefault(src, []).append(plan)
        return plan

    # -- forwarding ---------------------------------------------------------

    def _make_deliver(self, plan: RoutePlan, next_hop: int) -> Callable:
        """The cached deliver callback for arrival at route[next_hop]."""
        network = self.network
        if next_hop == len(plan.route) - 1:
            # Final hop: deliver straight into the network's demux; the
            # bound method itself is the callback (no closure at all).
            return network._frame_arrived

        def deliver(frame: Frame) -> None:
            link = plan.links[next_hop]
            if not link.is_up:
                on_drop = frame.on_drop
                if on_drop is not None:
                    on_drop(
                        frame,
                        f"no usable link {plan.route[next_hop]}->"
                        f"{plan.route[next_hop + 1]}",
                    )
                return
            frame.hops_taken = next_hop + 1
            link.transmit(frame, deliver=plan.delivers[next_hop],
                          on_drop=frame.on_drop)

        return deliver

    def transmit(self, frame: Frame, plan: RoutePlan, on_drop) -> None:
        """Send ``frame`` along ``plan``: the zero-allocation datapath."""
        frame.on_drop = on_drop
        links = plan.links
        if not links:
            self.network._frame_arrived(frame)
            return
        link = links[0]
        if not link.is_up:
            if on_drop is not None:
                on_drop(frame, f"no usable link {plan.route[0]}->{plan.route[1]}")
            return
        frame.hops_taken = 1
        link.transmit(frame, deliver=plan.delivers[0], on_drop=on_drop)

    # -- invalidation -------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every cached table and plan (topology grew, or the first
        churn event before tracking was on)."""
        for plan in self._plans.values():
            plan.dead = True
        self._plans.clear()
        self._tables.clear()
        self._edge_tables.clear()
        self._edge_plans.clear()
        self._src_plans.clear()
        self.epoch += 1
        self.full_invalidations += 1

    def _start_tracking(self) -> None:
        # First link state change: everything cached was built without
        # reverse indexes, so pay one full invalidation and maintain the
        # indexes from here on.
        self._track = True
        self.invalidate_all()

    def _kill_plan(self, plan: RoutePlan) -> None:
        plan.dead = True
        key = (plan.src, plan.dst)
        if self._plans.get(key) is plan:
            del self._plans[key]
        self.scoped_plan_drops += 1

    def link_down(self, u: str, v: str) -> None:
        """A link died: routes that avoid it are still shortest (the
        path set only shrank), so drop exactly the indexed dependents."""
        if not self._track:
            self._start_tracking()
            return
        for src in self._edge_tables.pop((u, v), ()):
            if self._tables.pop(src, None) is not None:
                self.scoped_table_drops += 1
        for plan in self._edge_plans.pop((u, v), ()):
            if not plan.dead:
                self._kill_plan(plan)

    def link_up(self, u: str, v: str) -> None:
        """A link recovered: it can only improve a source's routes when
        ``dist(src, u) + w < dist(src, v)`` -- probe the cached distance
        maps and drop exactly those sources (and their plans)."""
        if not self._track:
            self._start_tracking()
            return
        weight = self.network._link_weight(u, v)
        inf = float("inf")
        affected = [
            src
            for src, table in self._tables.items()
            if table.dist.get(u, inf) + weight < table.dist.get(v, inf)
        ]
        for src in affected:
            del self._tables[src]
            self.scoped_table_drops += 1
            for plan in self._src_plans.pop(src, ()):
                if not plan.dead:
                    self._kill_plan(plan)

    def __repr__(self) -> str:
        return (
            f"<ForwardingEngine tables={len(self._tables)} "
            f"plans={len(self._plans)} epoch={self.epoch} "
            f"tracking={self._track}>"
        )
