"""Scale-out routing: forwarding tables, compiled plans, scoped repair.

The internetwork's original resolver ran one Dijkstra per (src, dst)
pair on demand and cleared the *entire* route cache whenever any link
changed state.  At a handful of nodes that is invisible; at hundreds of
hosts over a router mesh with link churn it is an O(N^2) recompute storm
on the hot path.  This module amortizes and scopes that work:

* **Forwarding tables** -- one Dijkstra per *source* covers every
  destination at once (`ForwardingTable`: final distances plus the
  shortest-path-tree predecessor map).  Tables are built lazily and
  stamped with the engine epoch.  Because Dijkstra's relaxations are
  deterministic and a settled node's predecessor never changes after it
  is popped, the route reconstructed from a full-run table is *exactly*
  the route the per-pair early-exit search would have produced -- not
  merely cost-equal -- so fixed-seed traces on static topologies are
  byte-identical with the legacy resolver.

* **Compiled route plans** -- per (src, dst) a `RoutePlan` freezes the
  resolved `Link` sequence, the admission pools along it, the path
  profile (fixed and per-byte delay), and one pre-built deliver
  callback per hop.  Forwarding a frame does zero dict lookups and
  zero closure allocation: each hop is a tuple index plus an `is_up`
  test.  The per-frame drop callback rides on the frame itself
  (``Frame.on_drop``) instead of being captured per hop per frame.

* **Equal-cost multipath (ECMP)** -- with ``ecmp=True`` the same full
  run also records *every* equal-cost predecessor per node, turning the
  shortest-path tree into a DAG.  Per (src, dst) the engine enumerates
  a bounded, deterministic set of equal-cost routes (`PathSet`) and
  pins each *flow* -- identified by a small integer threaded down from
  the RMS layer -- to one of them via a seed-independent hash
  (``zlib.crc32``, never Python's salted ``hash``).  A flow keeps
  byte-identical in-order delivery on its pinned plan while distinct
  flows spread across the parallel trunks.  Tie-free topologies
  enumerate exactly one route and hand out the *same* canonical plan
  object as the single-path engine, so their traces are byte-identical
  by construction.

* **Scoped invalidation** -- reverse indexes map each directed edge to
  the tables whose shortest-path tree uses it and the plans that
  traverse it.  A link going *down* only removes paths, so every
  cached route that avoids it is still shortest: only the indexed
  dependents are dropped.  A link coming *up* can improve any route,
  but only for sources where ``dist(src, u) + w(u, v) < dist(src, v)``
  -- an O(sources) probe against the cached distance maps identifies
  exactly those, and disjoint routes are untouched.  Under ECMP the
  down case gets gentler still: if a flapped edge (u, v) leaves
  ``preds[v]`` non-empty, the distances are all still optimal, so the
  table survives with the DAG pruned in place (no rebuild) and only
  the route plans pinned *through* the edge die; surviving equal-cost
  siblings absorb re-established flows.  The up probe widens to
  ``<=`` so restored cost-ties re-enter the DAG.

* **Fixed-topology fast path** -- none of the index bookkeeping runs
  until the first link state change.  A static topology (the common
  bench case) pays nothing for invalidation support; the first churn
  event falls back to one full invalidation and switches tracking on.

Known divergence (documented in DESIGN.md 8.7/8.8): after a link comes
back up, a surviving table may keep a cached route that *ties* a path
through the restored link; a from-scratch Dijkstra could tie-break the
other way.  Costs are always equal, and static topologies are exact.
"""

from __future__ import annotations

import heapq
import zlib
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import RoutingError
from repro.netsim.admission import NULL_POOLS
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.internet import InternetNetwork

__all__ = [
    "ForwardingTable",
    "RoutePlan",
    "PathSet",
    "ForwardingEngine",
    "flow_hash",
]

_EdgeKey = Tuple[str, str]


def flow_hash(src: str, dst: str, flow: int) -> int:
    """A deterministic, process-independent hash of one flow's identity.

    Python's builtin ``hash`` is salted per interpreter, which would make
    path pinning irreproducible across runs; CRC-32 over the canonical
    flow label is stable everywhere and cheap enough for a once-per-RMS
    operation.
    """
    return zlib.crc32(f"{src}|{dst}|{flow}".encode("ascii", "replace"))


class ForwardingTable:
    """One source's shortest paths to every reachable node."""

    __slots__ = ("src", "dist", "prev", "preds", "epoch")

    def __init__(
        self,
        src: str,
        dist: Dict[str, float],
        prev: Dict[str, str],
        epoch: int,
        preds: Optional[Dict[str, List[str]]] = None,
    ) -> None:
        self.src = src
        #: Final shortest distance per reachable node (reachability is a
        #: dict probe: ``dst in table.dist``).
        self.dist = dist
        #: Shortest-path-tree predecessor per reachable node (except the
        #: source itself); routes are reconstructed by walking it.
        self.prev = prev
        #: ECMP only: *all* equal-cost predecessors per node, in settle
        #: order, with the invariant ``preds[v][0] == prev[v]``.  None
        #: when the engine runs single-path.
        self.preds = preds
        self.epoch = epoch

    def __repr__(self) -> str:
        return (
            f"<ForwardingTable src={self.src} reach={len(self.dist)} "
            f"epoch={self.epoch}>"
        )


class RoutePlan:
    """A compiled (src, dst) route: links, pools, deliver callbacks."""

    __slots__ = (
        "src", "dst", "route", "links", "pools", "delivers",
        "fixed_delay", "per_byte_delay", "epoch", "dead",
    )

    def __init__(self, src: str, dst: str, route: List[str], epoch: int) -> None:
        self.src = src
        self.dst = dst
        #: Node names, shared (never mutated): frames and RMSs reference
        #: this list directly instead of copying it per frame.
        self.route = route
        self.links: Tuple = ()
        self.pools: List = []
        self.delivers: Tuple = ()
        self.fixed_delay = 0.0
        self.per_byte_delay = 0.0
        self.epoch = epoch
        #: Set by scoped invalidation.  A dead plan is never handed out
        #: for new resolutions; frames of already-admitted RMSs keep
        #: forwarding on it (data follows the admitted route, and a
        #: downed on-route link fails the RMS through the usual path).
        self.dead = False

    def __repr__(self) -> str:
        state = "dead" if self.dead else "live"
        return f"<RoutePlan {self.src}->{self.dst} hops={len(self.links)} {state}>"


class PathSet:
    """The bounded equal-cost route set for one (src, dst) pair.

    ``routes[0]`` starts as the canonical predecessor-tree route (the
    one the single-path engine would compile); plans are compiled
    lazily, one per pinned route, and cached in ``plans`` parallel to
    ``routes``.  Scoped invalidation prunes routes in place.
    """

    __slots__ = ("src", "dst", "routes", "plans", "epoch")

    def __init__(
        self, src: str, dst: str, routes: List[List[str]], epoch: int
    ) -> None:
        self.src = src
        self.dst = dst
        self.routes = routes
        self.plans: List[Optional[RoutePlan]] = [None] * len(routes)
        self.epoch = epoch

    def __repr__(self) -> str:
        return (
            f"<PathSet {self.src}->{self.dst} routes={len(self.routes)} "
            f"epoch={self.epoch}>"
        )


class ForwardingEngine:
    """Next-hop tables, compiled plans, and scoped invalidation for one
    :class:`~repro.netsim.internet.InternetNetwork`."""

    def __init__(
        self,
        network: "InternetNetwork",
        ecmp: bool = False,
        max_paths: int = 8,
    ) -> None:
        self.network = network
        #: Spread flows across equal-cost routes when True; the default
        #: single-path mode reproduces the legacy resolver exactly.
        self.ecmp = ecmp
        #: Cap on enumerated equal-cost routes per (src, dst); the DFS
        #: over the predecessor DAG stops once the bound is reached, in
        #: deterministic settle order, so the bound never introduces
        #: nondeterminism.
        self.max_paths = max(1, max_paths)
        self._tables: Dict[str, ForwardingTable] = {}
        self._plans: Dict[Tuple[str, str], RoutePlan] = {}
        self._pathsets: Dict[Tuple[str, str], PathSet] = {}
        #: Reverse indexes, maintained only once churn has been seen
        #: (the fixed-topology fast path skips this bookkeeping).
        self._edge_tables: Dict[_EdgeKey, Set[str]] = {}
        self._edge_plans: Dict[_EdgeKey, List[RoutePlan]] = {}
        self._src_plans: Dict[str, List[RoutePlan]] = {}
        self._edge_pathsets: Dict[_EdgeKey, List[PathSet]] = {}
        self._src_pathsets: Dict[str, List[PathSet]] = {}
        #: Path sets that lost routes to a downed edge, keyed by it: the
        #: matching link_up drops them so the restored siblings rejoin.
        self._edge_pruned: Dict[_EdgeKey, List[PathSet]] = {}
        self._track = False
        self.epoch = 0
        # Introspection counters (bench telemetry).
        self.table_builds = 0
        self.plan_compiles = 0
        self.pathset_builds = 0
        self.flow_pins = 0
        self.dag_prunes = 0
        self.scoped_table_drops = 0
        self.scoped_plan_drops = 0
        self.full_invalidations = 0

    # -- resolution ---------------------------------------------------------

    def table(self, src: str) -> ForwardingTable:
        """The forwarding table for ``src``, built lazily."""
        table = self._tables.get(src)
        if table is not None:
            return table
        return self._build_table(src)

    def _build_table(self, src: str) -> ForwardingTable:
        # One full-run Dijkstra: identical float operations, relaxation
        # order, and tie-breaking as the legacy per-pair search, minus
        # the early exit -- so reconstructed routes match it exactly.
        # Under ECMP the only extra work is the equal-cost bookkeeping:
        # a strict improvement resets preds[v], an exact tie appends, so
        # preds[v][0] is always the canonical tree predecessor.
        network = self.network
        weight_of = network._link_weight
        links = network._links
        adjacency = network._adjacency
        distances: Dict[str, float] = {src: 0.0}
        previous: Dict[str, str] = {}
        preds: Optional[Dict[str, List[str]]] = {} if self.ecmp else None
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited: Set[str] = set()
        inf = float("inf")
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor in adjacency.get(node, []):
                if (node, neighbor) not in links:
                    continue
                weight = weight_of(node, neighbor)
                if weight == inf:
                    continue
                candidate = dist + weight
                best = distances.get(neighbor, inf)
                if candidate < best:
                    distances[neighbor] = candidate
                    previous[neighbor] = node
                    if preds is not None:
                        preds[neighbor] = [node]
                    heapq.heappush(heap, (candidate, neighbor))
                elif preds is not None and candidate == best:
                    preds[neighbor].append(node)
        table = ForwardingTable(src, distances, previous, self.epoch, preds)
        self._tables[src] = table
        self.table_builds += 1
        network.route_resolutions += 1
        if self._track:
            edge_tables = self._edge_tables
            if preds is not None:
                # Every DAG edge, not just the tree: pruning needs to
                # find the table from any flapped equal-cost sibling.
                for node, plist in preds.items():
                    for pred_node in plist:
                        edge_tables.setdefault((pred_node, node), set()).add(src)
            else:
                for node, prev_node in previous.items():
                    edge_tables.setdefault((prev_node, node), set()).add(src)
        return table

    def plan(self, src: str, dst: str) -> RoutePlan:
        """The compiled canonical plan for (src, dst); raises RoutingError."""
        key = (src, dst)
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        network = self.network
        if not network._node_exists(src) or not network._node_exists(dst):
            raise RoutingError(f"unknown endpoint in {src}->{dst}")
        if src == dst:
            plan = RoutePlan(src, dst, [src], self.epoch)
            plan.pools = NULL_POOLS
            plan.delivers = ()
            self._plans[key] = plan
            self.plan_compiles += 1
            return plan
        table = self.table(src)
        if dst not in table.prev:
            raise RoutingError(f"no route from {src} to {dst} in {network.name}")
        route = [dst]
        prev = table.prev
        while route[-1] != src:
            route.append(prev[route[-1]])
        route.reverse()
        plan = self._compile_plan(src, dst, route)
        self._plans[key] = plan
        return plan

    def plan_for_flow(self, src: str, dst: str, flow: Optional[int]) -> RoutePlan:
        """The compiled plan a given flow is pinned to.

        Single-path mode, an anonymous flow, or a tie-free pair all
        resolve to the canonical :meth:`plan` (same object, so tie-free
        ECMP traces are byte-identical to the single-path engine).  With
        real equal-cost alternatives the flow hash picks one route and
        the pinned plan is compiled lazily and cached in the PathSet.
        """
        if not self.ecmp or flow is None or src == dst:
            return self.plan(src, dst)
        pathset = self._pathset(src, dst)
        routes = pathset.routes
        if len(routes) == 1:
            return self.plan(src, dst)
        index = flow_hash(src, dst, flow) % len(routes)
        plan = pathset.plans[index]
        if plan is None or plan.dead:
            plan = self._compile_plan(src, dst, routes[index])
            pathset.plans[index] = plan
        self.flow_pins += 1
        return plan

    def pathset(self, src: str, dst: str) -> PathSet:
        """The equal-cost route set for (src, dst) (ECMP mode only)."""
        if not self.ecmp:
            raise RoutingError("pathset() requires ecmp=True")
        return self._pathset(src, dst)

    def _pathset(self, src: str, dst: str) -> PathSet:
        key = (src, dst)
        pathset = self._pathsets.get(key)
        if pathset is not None:
            return pathset
        network = self.network
        if not network._node_exists(src) or not network._node_exists(dst):
            raise RoutingError(f"unknown endpoint in {src}->{dst}")
        table = self.table(src)
        if dst not in table.prev:
            raise RoutingError(f"no route from {src} to {dst} in {network.name}")
        routes = self._enumerate_routes(table, src, dst)
        pathset = PathSet(src, dst, routes, self.epoch)
        self._pathsets[key] = pathset
        self.pathset_builds += 1
        if self._track:
            edge_pathsets = self._edge_pathsets
            for route in routes:
                for i in range(len(route) - 1):
                    edge_pathsets.setdefault(
                        (route[i], route[i + 1]), []
                    ).append(pathset)
            self._src_pathsets.setdefault(src, []).append(pathset)
        return pathset

    def _enumerate_routes(
        self, table: ForwardingTable, src: str, dst: str
    ) -> List[List[str]]:
        # Bounded DFS over the predecessor DAG, walking backwards from
        # the destination.  Predecessor lists are in settle order and
        # preds[v][0] == prev[v], so the first emitted route is exactly
        # the canonical tree route and the whole enumeration order is
        # deterministic; the bound truncates it without reordering.
        preds = table.preds
        assert preds is not None
        bound = self.max_paths
        routes: List[List[str]] = []
        suffix = [dst]

        def walk(node: str) -> None:
            if node == src:
                routes.append(list(reversed(suffix)))
                return
            for pred_node in preds[node]:
                if len(routes) >= bound:
                    return
                suffix.append(pred_node)
                walk(pred_node)
                suffix.pop()

        walk(dst)
        return routes

    def _compile_plan(self, src: str, dst: str, route: List[str]) -> RoutePlan:
        network = self.network
        plan = RoutePlan(src, dst, route, self.epoch)
        links = []
        pools = []
        fixed = 0.0
        per_byte = 0.0
        for i in range(len(route) - 1):
            hop = (route[i], route[i + 1])
            link = network._links[hop]
            links.append(link)
            pool = network._pools.get(hop)
            if pool is not None:
                pools.append(pool)
            fixed += link.propagation_delay + link.transmission_time(
                FRAME_OVERHEAD_BYTES
            )
            per_byte += 1.0 / link.bandwidth
        plan.links = tuple(links)
        plan.pools = pools or NULL_POOLS
        plan.fixed_delay = fixed
        plan.per_byte_delay = per_byte
        plan.delivers = tuple(
            self._make_deliver(plan, i + 1) for i in range(len(links))
        )
        self.plan_compiles += 1
        if self._track:
            edge_plans = self._edge_plans
            for i in range(len(route) - 1):
                edge_plans.setdefault((route[i], route[i + 1]), []).append(plan)
            self._src_plans.setdefault(src, []).append(plan)
        return plan

    # -- forwarding ---------------------------------------------------------

    def _make_deliver(self, plan: RoutePlan, next_hop: int) -> Callable:
        """The cached deliver callback for arrival at route[next_hop]."""
        network = self.network
        if next_hop == len(plan.route) - 1:
            # Final hop: deliver straight into the network's demux; the
            # bound method itself is the callback (no closure at all).
            return network._frame_arrived

        def deliver(frame: Frame) -> None:
            link = plan.links[next_hop]
            if not link.is_up:
                on_drop = frame.on_drop
                if on_drop is not None:
                    on_drop(
                        frame,
                        f"no usable link {plan.route[next_hop]}->"
                        f"{plan.route[next_hop + 1]}",
                    )
                return
            frame.hops_taken = next_hop + 1
            link.transmit(frame, deliver=plan.delivers[next_hop],
                          on_drop=frame.on_drop)

        return deliver

    def transmit(self, frame: Frame, plan: RoutePlan, on_drop) -> None:
        """Send ``frame`` along ``plan``: the zero-allocation datapath."""
        frame.on_drop = on_drop
        links = plan.links
        if not links:
            self.network._frame_arrived(frame)
            return
        link = links[0]
        if not link.is_up:
            if on_drop is not None:
                on_drop(frame, f"no usable link {plan.route[0]}->{plan.route[1]}")
            return
        frame.hops_taken = 1
        link.transmit(frame, deliver=plan.delivers[0], on_drop=on_drop)

    # -- invalidation -------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every cached table and plan (topology grew, or the first
        churn event before tracking was on)."""
        for plan in self._plans.values():
            plan.dead = True
        for pathset in self._pathsets.values():
            for plan in pathset.plans:
                if plan is not None:
                    plan.dead = True
        self._plans.clear()
        self._tables.clear()
        self._pathsets.clear()
        self._edge_tables.clear()
        self._edge_plans.clear()
        self._src_plans.clear()
        self._edge_pathsets.clear()
        self._src_pathsets.clear()
        self._edge_pruned.clear()
        self.epoch += 1
        self.full_invalidations += 1

    def _start_tracking(self) -> None:
        # First link state change: everything cached was built without
        # reverse indexes, so pay one full invalidation and maintain the
        # indexes from here on.
        self._track = True
        self.invalidate_all()

    def _kill_plan(self, plan: RoutePlan) -> None:
        plan.dead = True
        key = (plan.src, plan.dst)
        if self._plans.get(key) is plan:
            del self._plans[key]
        self.scoped_plan_drops += 1

    def _drop_pathset(self, pathset: PathSet) -> None:
        key = (pathset.src, pathset.dst)
        if self._pathsets.get(key) is pathset:
            del self._pathsets[key]
        for plan in pathset.plans:
            if plan is not None and not plan.dead:
                self._kill_plan(plan)

    def _prune_pathset(self, pathset: PathSet, u: str, v: str) -> None:
        # Distances are unchanged (link removal can't shorten anything),
        # so every surviving enumerated route is still cost-optimal:
        # filter out the routes through (u, v), keep the rest in place.
        key = (pathset.src, pathset.dst)
        if self._pathsets.get(key) is not pathset:
            return  # stale index entry for an already-replaced set
        keep_routes: List[List[str]] = []
        keep_plans: List[Optional[RoutePlan]] = []
        for route, plan in zip(pathset.routes, pathset.plans):
            on_edge = any(
                route[i] == u and route[i + 1] == v
                for i in range(len(route) - 1)
            )
            if on_edge:
                if plan is not None and not plan.dead:
                    self._kill_plan(plan)
            else:
                keep_routes.append(route)
                keep_plans.append(plan)
        if keep_routes and len(keep_routes) < len(pathset.routes):
            pathset.routes = keep_routes
            pathset.plans = keep_plans
            # Remember the prune so the matching link_up restores the
            # lost siblings by rebuilding the (now stale) set.
            self._edge_pruned.setdefault((u, v), []).append(pathset)
        elif not keep_routes:
            del self._pathsets[key]

    def link_down(self, u: str, v: str) -> None:
        """A link died: routes that avoid it are still shortest (the
        path set only shrank), so drop exactly the indexed dependents.

        Under ECMP a table whose DAG loses edge (u, v) but keeps another
        predecessor into ``v`` still has optimal distances everywhere:
        prune the DAG in place instead of dropping the table, and let
        the surviving equal-cost siblings carry re-pinned flows."""
        if not self._track:
            self._start_tracking()
            return
        edge = (u, v)
        for src in self._edge_tables.pop(edge, ()):
            table = self._tables.get(src)
            if table is None:
                continue
            preds = table.preds
            if preds is not None:
                plist = preds.get(v)
                if plist is not None and u in plist and len(plist) > 1:
                    plist.remove(u)
                    if table.prev.get(v) == u:
                        table.prev[v] = plist[0]
                    self.dag_prunes += 1
                    continue
            del self._tables[src]
            self.scoped_table_drops += 1
        for plan in self._edge_plans.pop(edge, ()):
            if not plan.dead:
                self._kill_plan(plan)
        for pathset in self._edge_pathsets.pop(edge, ()):
            self._prune_pathset(pathset, u, v)

    def link_up(self, u: str, v: str) -> None:
        """A link recovered: it can only improve a source's routes when
        ``dist(src, u) + w < dist(src, v)`` -- probe the cached distance
        maps and drop exactly those sources (and their plans).  Under
        ECMP a restored *tie* (``<=``) also matters: it re-enters the
        equal-cost DAG, so tying sources are dropped too, and path sets
        previously pruned by this edge are rebuilt on next use."""
        if not self._track:
            self._start_tracking()
            return
        weight = self.network._link_weight(u, v)
        inf = float("inf")
        ecmp = self.ecmp
        affected = []
        for src, table in self._tables.items():
            dist_u = table.dist.get(u, inf)
            dist_v = table.dist.get(v, inf)
            candidate = dist_u + weight
            if candidate < dist_v or (
                ecmp and dist_v != inf and candidate == dist_v
            ):
                affected.append(src)
        for src in affected:
            del self._tables[src]
            self.scoped_table_drops += 1
            for plan in self._src_plans.pop(src, ()):
                if not plan.dead:
                    self._kill_plan(plan)
            for pathset in self._src_pathsets.pop(src, ()):
                self._drop_pathset(pathset)
        for pathset in self._edge_pruned.pop((u, v), ()):
            self._drop_pathset(pathset)

    def __repr__(self) -> str:
        return (
            f"<ForwardingEngine tables={len(self._tables)} "
            f"plans={len(self._plans)} pathsets={len(self._pathsets)} "
            f"ecmp={self.ecmp} epoch={self.epoch} "
            f"tracking={self._track}>"
        )
