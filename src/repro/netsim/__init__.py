"""Simulated network substrate: media, routing, admission, network RMS."""

from repro.netsim.admission import AdmissionController, Reservation
from repro.netsim.chaos import ChaosEvent, ChaosSchedule
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.network import Network, NetworkProperties, NetworkRms
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame
from repro.netsim.routing import ForwardingEngine, ForwardingTable, RoutePlan
from repro.netsim.topology import (
    Host,
    Link,
    LinkStats,
    Mesh,
    MeshSpec,
    build_grid,
    build_star_of_routers,
    build_two_tier,
)

__all__ = [
    "AdmissionController",
    "ChaosEvent",
    "ChaosSchedule",
    "EthernetNetwork",
    "FRAME_OVERHEAD_BYTES",
    "ForwardingEngine",
    "ForwardingTable",
    "Frame",
    "Host",
    "ImpairmentModel",
    "InternetNetwork",
    "Link",
    "LinkStats",
    "Mesh",
    "MeshSpec",
    "Network",
    "NetworkProperties",
    "NetworkRms",
    "Reservation",
    "RoutePlan",
    "build_grid",
    "build_star_of_routers",
    "build_two_tier",
]
