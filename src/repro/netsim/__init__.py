"""Simulated network substrate: media, routing, admission, network RMS."""

from repro.netsim.admission import AdmissionController, Reservation
from repro.netsim.chaos import ChaosEvent, ChaosSchedule
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.ethernet import EthernetNetwork
from repro.netsim.internet import InternetNetwork
from repro.netsim.network import Network, NetworkProperties, NetworkRms
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame
from repro.netsim.topology import Host, Link, LinkStats

__all__ = [
    "AdmissionController",
    "ChaosEvent",
    "ChaosSchedule",
    "EthernetNetwork",
    "FRAME_OVERHEAD_BYTES",
    "Frame",
    "Host",
    "ImpairmentModel",
    "InternetNetwork",
    "Link",
    "LinkStats",
    "Network",
    "NetworkProperties",
    "NetworkRms",
    "Reservation",
]
