"""An internetwork: store-and-forward gateways over point-to-point links.

Models the paper's long-haul case ("high-delay long-distance networks",
section 1) and its congestion-control discussion: "if packet queueing in
an internetwork gateway is done using RMS-specified deadlines, then a
low-delay packet can be sent before high-delay packets that would
otherwise cause it to be delivered late" (section 2.5), and "the flow
control of TCP does not protect gateway buffers; ICMP source quench
messages provide an ad hoc and often ineffective solution" (section
4.4).  Gateways here queue by deadline, drop on buffer overrun, and can
optionally emit source-quench frames for the TCP baseline (E11).

Routing is shortest-path (Dijkstra) over link latency, computed from
scratch -- no external graph library.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.message import Message
from repro.errors import NetworkError, RoutingError
from repro.netsim.admission import NULL_POOLS, AdmissionController
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.network import Network, NetworkProperties
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame
from repro.netsim.routing import ForwardingEngine, RoutePlan
from repro.netsim.topology import Link
from repro.sim.context import SimContext

__all__ = ["InternetNetwork"]


class InternetNetwork(Network):
    """A routed network of hosts and gateways.

    Nodes are host names (attached via :meth:`attach`) or router names
    (added via :meth:`add_router`).  :meth:`add_link` wires two nodes
    with a pair of simplex links, each with its own bandwidth,
    propagation delay, buffer, and admission pool.
    """

    def __init__(
        self,
        context: SimContext,
        name: str = "internet0",
        mtu: int = 576,
        trusted: bool = False,
        link_encryption: bool = False,
        link_checksum: bool = True,
        supports_guarantees: bool = True,
        source_quench: bool = False,
        quench_threshold: float = 0.75,
        queue_policy: str = "edf",
        link_batching: bool = True,
        route_engine: bool = True,
        ecmp: bool = False,
        ecmp_max_paths: int = 8,
    ) -> None:
        properties = NetworkProperties(
            trusted=trusted,
            physical_broadcast=False,
            link_encryption=link_encryption,
            link_checksum=link_checksum,
            mtu=mtu,
            supports_guarantees=supports_guarantees,
        )
        super().__init__(context, name, properties)
        self.routers: Set[str] = set()
        self._links: Dict[Tuple[str, str], Link] = {}
        self._pools: Dict[Tuple[str, str], AdmissionController] = {}
        self._adjacency: Dict[str, List[str]] = {}
        self._route_cache: Dict[Tuple[str, str], List[str]] = {}
        #: The scale-out resolver: per-source forwarding tables, compiled
        #: route plans, scoped invalidation.  ``route_engine=False``
        #: falls back to the per-pair Dijkstra with whole-cache clears
        #: (kept as the E22 ablation baseline).
        self.route_engine = route_engine
        #: Spread distinct flows across equal-cost shortest paths.  Off
        #: by default: the single-path engine is the ablation arm and
        #: byte-identical with the legacy resolver.  Requires the route
        #: engine (ECMP lives in its predecessor-DAG bookkeeping).
        self.ecmp = ecmp and route_engine
        self.ecmp_max_paths = ecmp_max_paths
        self._engine = ForwardingEngine(
            self, ecmp=self.ecmp, max_paths=ecmp_max_paths
        )
        self._link_edges: Dict[Link, Tuple[str, str]] = {}
        #: Shortest-path searches run (one per table build with the
        #: engine, one per cache-missing pair without it).
        self.route_resolutions = 0
        self.queue_policy = queue_policy
        self.link_batching = link_batching
        self.source_quench = source_quench
        self.quench_threshold = quench_threshold
        self.quenches_sent = 0

    # -- topology construction ------------------------------------------------

    def add_router(self, name: str) -> None:
        """Add an interior gateway node."""
        if name in self.hosts:
            raise NetworkError(f"{name!r} is already a host on this network")
        self.routers.add(name)
        self._adjacency.setdefault(name, [])

    def _node_exists(self, name: str) -> bool:
        return name in self.hosts or name in self.routers

    def add_link(
        self,
        node_a: str,
        node_b: str,
        bandwidth: float = 7000.0,  # bytes/second (56 kbit/s trunk)
        propagation_delay: float = 0.01,
        buffer_bytes: int = 16 * 1024,
        bit_error_rate: float = 0.0,
        frame_loss_rate: float = 0.0,
    ) -> Tuple[Link, Link]:
        """Connect two nodes with simplex links in both directions."""
        for node in (node_a, node_b):
            if not self._node_exists(node):
                raise NetworkError(f"unknown node {node!r}; attach or add_router first")
        if (node_a, node_b) in self._links:
            raise NetworkError(f"link {node_a}<->{node_b} already exists")
        links = []
        for src, dst in ((node_a, node_b), (node_b, node_a)):
            link = Link(
                self.context,
                name=f"{self.name}.{src}->{dst}",
                bandwidth=bandwidth,
                propagation_delay=propagation_delay,
                buffer_bytes=buffer_bytes,
                policy=self.queue_policy,
                impairment=ImpairmentModel(
                    bit_error_rate=bit_error_rate, frame_loss_rate=frame_loss_rate
                ),
                batch_transmit=self.link_batching,
            )
            self._links[(src, dst)] = link
            self._pools[(src, dst)] = AdmissionController(
                total_bandwidth=bandwidth, total_buffer_bytes=buffer_bytes
            )
            # One shared handler pair for every link; the edge a firing
            # link belongs to is a dict probe, not a captured closure.
            self._link_edges[link] = (src, dst)
            link.on_down.listen(self._on_link_down)
            link.on_up.listen(self._on_link_up)
            if self.source_quench:
                link.on_overrun = self._make_overrun_handler(src, dst)
            links.append(link)
        self._adjacency.setdefault(node_a, []).append(node_b)
        self._adjacency.setdefault(node_b, []).append(node_a)
        self._route_cache.clear()
        self._engine.invalidate_all()
        self.medium_bit_error_rate = max(
            self.medium_bit_error_rate, bit_error_rate
        )
        return links[0], links[1]

    def can_reach(self, src: str, dst: str) -> bool:
        """True when a route of live links currently exists.

        With the forwarding engine this is a dict probe into the
        source's (lazily built, scoped-invalidated) table -- no path
        search and no exception control flow per call.
        """
        if src not in self.hosts or dst not in self.hosts:
            return False
        if self.route_engine:
            return src == dst or dst in self._engine.table(src).dist
        try:
            self.route_between(src, dst)
        except RoutingError:
            return False
        return True

    def link(self, src: str, dst: str) -> Link:
        """The simplex link from ``src`` to ``dst``."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src}->{dst} in {self.name}") from None

    def _on_link_down(self, link: Link) -> None:
        src, dst = self._link_edges[link]
        if self.route_engine:
            self._engine.link_down(src, dst)
        else:
            self._route_cache.clear()
        self._fail_rms_on_route((src, dst), f"link {src}->{dst} down")

    def _on_link_up(self, link: Link) -> None:
        src, dst = self._link_edges[link]
        if self.route_engine:
            self._engine.link_up(src, dst)
        else:
            self._route_cache.clear()

    def _make_overrun_handler(self, src: str, dst: str) -> Callable[[Frame], None]:
        def on_overrun(frame: Frame) -> None:
            self._send_quench(frame)

        return on_overrun

    def _send_quench(self, offending: Frame) -> None:
        """ICMP-style source quench back to the offending frame's source."""
        if offending.kind != "data" or offending.src_host not in self.hosts:
            return
        self.quenches_sent += 1
        message = Message(
            b"\x00" * 8,
            headers={"op": "quench", "about_rms": offending.rms_id},
        )
        frame = Frame(
            message=message,
            src_host=offending.dst_host,
            dst_host=offending.src_host,
            rms_id=offending.rms_id,
            kind="quench",
            deadline=self.context.now,
        )
        self._transmit_frame(frame)

    # -- routing ------------------------------------------------------------

    def _link_weight(self, src: str, dst: str) -> float:
        link = self._links[(src, dst)]
        if not link.is_up:
            return float("inf")
        return link.propagation_delay + link.transmission_time(
            self.properties.mtu + FRAME_OVERHEAD_BYTES
        )

    def route_between(self, src: str, dst: str) -> List[str]:
        """Shortest path (by latency) between two nodes, cached.

        The forwarding engine serves this from the source's table (one
        Dijkstra amortized over all destinations); the legacy resolver
        runs one early-exit Dijkstra per pair.  Both return the exact
        same node sequence on the same topology.
        """
        if self.route_engine:
            return self._engine.plan(src, dst).route
        key = (src, dst)
        if key in self._route_cache:
            return self._route_cache[key]
        if not self._node_exists(src) or not self._node_exists(dst):
            raise RoutingError(f"unknown endpoint in {src}->{dst}")
        if src == dst:
            return [src]
        self.route_resolutions += 1
        distances: Dict[str, float] = {src: 0.0}
        previous: Dict[str, str] = {}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        visited: Set[str] = set()
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for neighbor in self._adjacency.get(node, []):
                if (node, neighbor) not in self._links:
                    continue
                weight = self._link_weight(node, neighbor)
                if weight == float("inf"):
                    continue
                candidate = dist + weight
                if candidate < distances.get(neighbor, float("inf")):
                    distances[neighbor] = candidate
                    previous[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        if dst not in distances:
            raise RoutingError(f"no route from {src} to {dst} in {self.name}")
        route = [dst]
        while route[-1] != src:
            route.append(previous[route[-1]])
        route.reverse()
        self._route_cache[key] = route
        return route

    # -- frame forwarding -------------------------------------------------------

    def _transmit_frame(
        self, frame: Frame, on_drop: Optional[Callable[[Frame, str], None]] = None
    ) -> None:
        if self.route_engine and not frame.route:
            # Control traffic and quenches: resolve through the compiled
            # plan (data frames of engine-routed RMSs enter via
            # :meth:`_transmit_plan` directly).
            plan = self._engine.plan(frame.src_host, frame.dst_host)
            frame.route = plan.route
            self._engine.transmit(frame, plan, on_drop)
            return
        route = frame.route or self.route_between(frame.src_host, frame.dst_host)
        frame.route = route
        self._forward(frame, 0, on_drop)

    def _transmit_plan(
        self,
        frame: Frame,
        plan: RoutePlan,
        on_drop: Optional[Callable[[Frame, str], None]],
    ) -> None:
        """Data-path transmit along a compiled plan (zero per-frame
        allocation: cached deliver callbacks, shared route list)."""
        self._engine.transmit(frame, plan, on_drop)

    def _forward(
        self,
        frame: Frame,
        hop_index: int,
        on_drop: Optional[Callable[[Frame, str], None]],
    ) -> None:
        if hop_index >= len(frame.route) - 1:
            self._frame_arrived(frame)
            return
        src = frame.route[hop_index]
        dst = frame.route[hop_index + 1]
        link = self._links.get((src, dst))
        if link is None or not link.is_up:
            if on_drop is not None:
                on_drop(frame, f"no usable link {src}->{dst}")
            return
        frame.hops_taken = hop_index + 1
        link.transmit(
            frame,
            deliver=lambda f, i=hop_index + 1: self._forward(f, i, on_drop),
            on_drop=on_drop,
        )

    # -- shared-network interface -------------------------------------------------

    def _path_profile(self, src: str, dst: str) -> Tuple[float, float, List[str]]:
        if self.route_engine:
            # Fixed/per-byte costs are memoized on the compiled plan
            # (link bandwidth and propagation never change post-build).
            plan = self._engine.plan(src, dst)
            return plan.fixed_delay, plan.per_byte_delay, plan.route
        route = self.route_between(src, dst)
        fixed = 0.0
        per_byte = 0.0
        for i in range(len(route) - 1):
            link = self._links[(route[i], route[i + 1])]
            fixed += link.propagation_delay + link.transmission_time(
                FRAME_OVERHEAD_BYTES
            )
            per_byte += 1.0 / link.bandwidth
        return fixed, per_byte, route

    def _route_plan(
        self, src: str, dst: str, flow: Optional[int] = None
    ) -> Optional[RoutePlan]:
        if self.route_engine:
            return self._engine.plan_for_flow(src, dst, flow)
        return None

    def _admission_pools(self, route: List[str]) -> List[AdmissionController]:
        pools = []
        for i in range(len(route) - 1):
            pool = self._pools.get((route[i], route[i + 1]))
            if pool is not None:
                pools.append(pool)
        return pools or NULL_POOLS

    def total_gateway_drops(self) -> int:
        """Buffer-overrun drops across all links (congestion metric)."""
        return sum(link.stats.frames_dropped_overrun for link in self._links.values())
