"""Network objects and network-level RMS (paper section 3.1).

"Each network type to which a DASH host is connected is represented ...
as an object with a standard interface.  These objects provide
host-to-host network RMS's.  They encapsulate network-specific protocols
for RMS creation, deletion, and transmission, and for non-RMS network
maintenance tasks such as routing."

A network object advertises (a) whether all hosts on it are *trusted*,
(b) whether it has the *physical broadcast property*, and (c) per
security/reliability combination, its performance limits.  RMS creation
runs a setup handshake over the network itself (one round trip), which
is what makes the ST's network-RMS cache (section 4.2) worth having.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.message import Label, Message
from repro.core.negotiation import CapabilityTable, PerformanceLimits, negotiate
from repro.core.pool import ObjectPool
from repro.core.params import DelayBound, DelayBoundType, RmsParams
from repro.core.rms import Rms, RmsLevel, RmsState
from repro.errors import NetworkError
from repro.netsim.admission import AdmissionController
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame, next_frame_id
from repro.netsim.topology import Host
from repro.sim.context import SimContext
from repro.sim.events import EventHandle
from repro.sim.process import Future

__all__ = ["NetworkProperties", "NetworkRms", "Network"]

_setup_ids = itertools.count(1)


@dataclass
class _PendingSetup:
    """An in-flight RMS setup handshake with retransmission state."""

    future: Future
    attempts: int = 0
    timer: Optional[EventHandle] = None

#: Accounted payload bytes of setup/teardown control frames.
SETUP_PAYLOAD_BYTES = 64


@dataclass(frozen=True)
class NetworkProperties:
    """The network parameters of section 3.1."""

    trusted: bool = False
    physical_broadcast: bool = False
    #: Link-level encryption hardware ("The network has link-level
    #: encryption hardware; the subtransport layer learns this ... and
    #: does no data encryption", section 2.5).
    link_encryption: bool = False
    #: Link-level data checksumming in hardware (section 1).
    link_checksum: bool = True
    mtu: int = 1500
    #: Whether deterministic/statistical guarantees are offered.
    supports_guarantees: bool = True


class NetworkRms(Rms):
    """A host-to-host RMS provided by one network object."""

    level = RmsLevel.NETWORK

    def __init__(
        self,
        context: SimContext,
        params: RmsParams,
        sender: Label,
        receiver: Label,
        network: "Network",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(context, params, sender, receiver, name=name)
        self.network = network
        #: Compiled forwarding plan (routed networks with the engine):
        #: pre-resolved links and cached per-hop deliver callbacks.
        #: Data keeps following it even after topology changes -- the
        #: admitted route is the contract -- and a dead on-route link
        #: fails the RMS through the usual notification path.
        self.plan = None
        #: Flow identity used for ECMP plan pinning: a small per-(src,
        #: dst) sequence number assigned at creation, deterministic per
        #: run (unlike the process-global rms_id counter).
        self.flow_key = 0
        self.route = []  # filled by routed networks
        self.established = False

    @property
    def route(self) -> List[str]:
        """Node names of the admitted path (routed networks)."""
        return self._route

    @route.setter
    def route(self, value: List[str]) -> None:
        # Re-pinning the route (downward-mux path diversity, tests) must
        # drop any compiled plan: the plan encodes the previous path.
        # ``create_rms`` assigns the plan *after* the route, so the
        # normal setup sequence is unaffected.
        self._route = value
        self.plan = None

    def _transmit(self, message: Message) -> None:
        # Data follows the route the stream was admitted on -- its
        # reservations live on those links, not on whatever path is
        # currently shortest.
        plan = self.plan
        frame = self.network._acquire_data_frame(
            message=message,
            src_host=self.sender.host,
            dst_host=self.receiver.host,
            rms_id=self.rms_id,
            deadline=message.deadline if message.deadline is not None else float("inf"),
            route=plan.route if plan is not None else list(self.route),
        )
        if plan is not None:
            self.network._transmit_plan(frame, plan, self._frame_dropped)
        else:
            self.network._transmit_frame(frame, on_drop=self._frame_dropped)

    def _frame_dropped(self, frame: Frame, reason: str) -> None:
        self._drop(frame.message, reason)

    def send_data_fast(self, message: Message, size: int, deadline: float) -> None:
        """:meth:`Rms.send_fast` with the frame build fused in.

        Used by the ST fast flusher when observability is off: same
        stats, same stamps, same frame fields and transmit call as
        ``send_fast`` -> ``_transmit``, minus one dispatch layer and the
        keyword-argument frame acquisition.  Anything unusual falls back
        to the full path.
        """
        if self.state is not RmsState.OPEN or size > self.params.max_message_size:
            self.send(message, deadline)
            return
        context = self.context
        message.send_time = context.loop._now
        message.deadline = deadline
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += size
        outstanding = self.outstanding_bytes + size
        self.outstanding_bytes = outstanding
        if outstanding > self.params.capacity:
            stats.capacity_violations += 1
        tracer = context.tracer
        if tracer.enabled:
            tracer.record(
                "rms", "send", rms=self.name, id=message.message_id, size=size
            )
        network = self.network
        plan = self.plan
        pooling = network._pool_frames and not context.obs.enabled
        if pooling:
            frame = network._frame_pool.acquire()
            if frame is not None:
                frame.message = message
                frame.src_host = self.sender.host
                frame.dst_host = self.receiver.host
                frame.rms_id = self.rms_id
                frame.kind = "data"
                frame.deadline = deadline
                frame.route = plan.route if plan is not None else list(self.route)
                frame.hops_taken = 0
                frame.corrupted = False
                frame.frame_id = next_frame_id()
                frame.enqueued_at = None
                frame.pooled = True
                frame._size = None
                if plan is not None:
                    network._transmit_plan(frame, plan, self._frame_dropped)
                else:
                    network._transmit_frame_fast(frame, self._frame_dropped)
                return
        frame = Frame(
            message=message, src_host=self.sender.host,
            dst_host=self.receiver.host, rms_id=self.rms_id, kind="data",
            deadline=deadline,
            route=plan.route if plan is not None else list(self.route),
        )
        frame.pooled = pooling
        if plan is not None:
            network._transmit_plan(frame, plan, self._frame_dropped)
        else:
            network._transmit_frame_fast(frame, self._frame_dropped)

    def _frame_arrived(self, frame: Frame) -> None:
        """Called by the network when a data frame reaches the receiver."""
        if frame.corrupted and self.network.properties.link_checksum:
            # Hardware checksum: corrupted frames never reach clients.
            self._drop(frame.message, "checksum failure")
            return
        message = frame.message
        if self.fast_path and not self.context.obs.enabled:
            self.deliver_fast(message, len(message.payload))
        else:
            self._deliver(message)

    def close(self) -> None:
        """Tear down through the owning network (releases reservations)."""
        if self.is_open:
            self.network.delete_rms(self)


class Network:
    """Base class of network objects.

    Subclasses implement the medium: :meth:`_transmit_frame`,
    :meth:`_path_profile` (fixed delay, per-byte delay, route), and
    :meth:`_admission_pools` (the resource pools a stream must be
    admitted to).  Everything else -- negotiation, admission, the setup
    handshake, demultiplexing, failure notification -- is shared.
    """

    def __init__(
        self,
        context: SimContext,
        name: str,
        properties: NetworkProperties,
        medium_bit_error_rate: float = 0.0,
    ) -> None:
        self.context = context
        self.name = name
        self.properties = properties
        self.medium_bit_error_rate = medium_bit_error_rate
        self.hosts: Dict[str, Host] = {}
        self._rms_table: Dict[int, NetworkRms] = {}
        self._pending_setups: Dict[int, "_PendingSetup"] = {}
        #: Setup handshake retransmission (the network-specific RMS
        #: creation protocol must survive frame loss).
        self.setup_timeout = 0.25
        self.setup_retries = 4
        self._incoming_listeners: Dict[str, List[Callable[[NetworkRms], None]]] = {}
        self._quench_handlers: Dict[str, Callable[[Frame], None]] = {}
        self.frames_delivered = 0
        self.frames_corrupted_delivered = 0
        self.setup_count = 0
        #: Data-frame recycling: with observability off nothing outside
        #: the network retains a delivered frame, so it is reusable.
        #: Ethernet sniffers *do* retain frames; registering one flips
        #: this off (see EthernetNetwork.add_sniffer).
        self._frame_pool = ObjectPool(cap=256)
        self._pool_frames = True
        #: Per-(src, dst) flow sequence numbers: deterministic per run,
        #: so ECMP path pinning is reproducible from the seed alone.
        self._flow_ids: Dict[Tuple[str, str], int] = {}

    # -- topology ---------------------------------------------------------

    def attach(self, host: Host) -> None:
        """Connect a host to this network."""
        if host.name in self.hosts:
            raise NetworkError(f"host {host.name} already attached to {self.name}")
        self.hosts[host.name] = host
        host.networks[self.name] = self

    def _require_host(self, host_name: str) -> Host:
        try:
            return self.hosts[host_name]
        except KeyError:
            raise NetworkError(
                f"host {host_name!r} is not attached to network {self.name}"
            ) from None

    def can_reach(self, src: str, dst: str) -> bool:
        """Whether the network can currently carry ``src -> dst`` traffic.

        Subclasses refine this with medium state (segment up, route
        exists) so multi-homed hosts can pick a usable network instead
        of timing out on a dead one.
        """
        return src in self.hosts and dst in self.hosts

    # -- frame recycling -----------------------------------------------------

    def _acquire_data_frame(
        self,
        message: Message,
        src_host: str,
        dst_host: str,
        rms_id: int,
        deadline: float,
        route: List[str],
    ) -> Frame:
        """A data frame, recycled from the pool when tracing is off."""
        if self._pool_frames and not self.context.obs.enabled:
            frame = self._frame_pool.acquire()
            if frame is not None:
                frame.message = message
                frame.src_host = src_host
                frame.dst_host = dst_host
                frame.rms_id = rms_id
                frame.kind = "data"
                frame.deadline = deadline
                frame.route = route
                frame.hops_taken = 0
                frame.corrupted = False
                frame.frame_id = next_frame_id()
                frame.enqueued_at = None
                frame.pooled = True
                frame._size = None  # new message: invalidate cached size
                return frame
            frame = Frame(
                message=message, src_host=src_host, dst_host=dst_host,
                rms_id=rms_id, kind="data", deadline=deadline, route=route,
            )
            frame.pooled = True
            return frame
        return Frame(
            message=message, src_host=src_host, dst_host=dst_host,
            rms_id=rms_id, kind="data", deadline=deadline, route=route,
        )

    def _recycle_frame(self, frame: Frame) -> None:
        """Return a delivered data frame to the pool.

        Only called once the frame's journey is over and nothing outside
        this network holds it.  Dropped frames are deliberately never
        recycled (drop listeners may retain them); that is a fallback to
        GC, not a leak.
        """
        if frame.pooled and self._pool_frames:
            frame.pooled = False
            frame.message = None  # type: ignore[assignment]
            frame.route = []
            frame.on_drop = None
            self._frame_pool.release(frame)

    # -- subclass interface -------------------------------------------------

    def _transmit_frame(
        self, frame: Frame, on_drop: Optional[Callable[[Frame, str], None]] = None
    ) -> None:
        raise NotImplementedError

    def _transmit_frame_fast(
        self, frame: Frame, on_drop: Optional[Callable[[Frame, str], None]]
    ) -> None:
        """Data-path transmit for frames of an established RMS.

        Media that re-validate per frame may override this to skip
        checks that cannot fail for an open stream (endpoints were
        validated at ``create_rms`` and hosts are never detached).
        """
        self._transmit_frame(frame, on_drop=on_drop)

    def _path_profile(self, src: str, dst: str) -> Tuple[float, float, List[str]]:
        """(fixed seconds, seconds/byte, route node names) for a pair."""
        raise NotImplementedError

    def _route_plan(self, src: str, dst: str, flow: Optional[int] = None):
        """Compiled forwarding plan for a pair (and flow), or ``None``.

        Networks without hop-by-hop forwarding (or with the engine
        disabled) return ``None`` and streams use the generic
        ``_transmit_frame`` path.  ``flow`` selects among equal-cost
        plans when the network runs ECMP; ``None`` always resolves the
        canonical single path.
        """
        return None

    def _next_flow(self, src: str, dst: str) -> int:
        """The next flow sequence number for a (src, dst) pair.

        Deterministic per run: the counter is per network instance and
        advances once per RMS creation, so repeated builds from the
        same seed pin the same flows to the same equal-cost paths.
        """
        key = (src, dst)
        flow = self._flow_ids.get(key, 0)
        self._flow_ids[key] = flow + 1
        return flow

    def _admission_pools(self, route: List[str]) -> List[AdmissionController]:
        raise NotImplementedError

    # -- capability advertisement (section 3.1) ------------------------------

    def capability_table(self, src: str, dst: str) -> CapabilityTable:
        """Per-pair performance limits for each supported combination."""
        fixed, per_byte, route = self._path_profile(src, dst)
        # Allow a few maximum-size frames of queueing ahead of each hop.
        slack = 4 * per_byte * (self.properties.mtu + FRAME_OVERHEAD_BYTES)
        # The capacity an RMS may keep outstanding is bounded by the
        # *smallest* buffer along the path (the bottleneck), discounted
        # because control traffic and other streams share it.
        bottleneck = min(
            pool.total_buffer_bytes for pool in self._admission_pools(route)
        )
        limits = PerformanceLimits(
            best_delay=DelayBound(fixed + slack, per_byte),
            max_capacity=max(1, (bottleneck * 3) // 4),
            max_message_size=self.properties.mtu,
            floor_bit_error_rate=self.medium_bit_error_rate,
            strongest_type=(
                DelayBoundType.DETERMINISTIC
                if self.properties.supports_guarantees
                else DelayBoundType.BEST_EFFORT
            ),
        )
        table = CapabilityTable()
        table.set_limits(False, False, False, limits)
        secure_medium = self.properties.trusted or self.properties.link_encryption
        if secure_medium:
            # The medium itself prevents impersonation and eavesdropping,
            # so every security combination is available at no extra cost.
            for authentication in (False, True):
                for privacy in (False, True):
                    table.set_limits(False, authentication, privacy, limits)
        return table

    # -- RMS lifecycle ---------------------------------------------------------

    def create_rms(
        self,
        sender: Label,
        receiver: Label,
        desired: RmsParams,
        acceptable: RmsParams,
        flow: Optional[int] = None,
    ) -> Future:
        """Create a network RMS between two attached hosts.

        Negotiation and admission run immediately (raising
        :class:`NegotiationError` / :class:`AdmissionError` on
        rejection); the returned future resolves to the
        :class:`NetworkRms` once the setup handshake (one network round
        trip) completes.  ``flow`` overrides the stream's flow identity
        for ECMP path pinning; by default each (src, dst) pair hands
        out sequence numbers, so successive streams between the same
        hosts spread across equal-cost paths.
        """
        self._require_host(sender.host)
        self._require_host(receiver.host)
        table = self.capability_table(sender.host, receiver.host)
        actual = negotiate(desired, acceptable, table)
        fixed, per_byte, route = self._path_profile(sender.host, receiver.host)
        rms = NetworkRms(
            self.context,
            actual,
            sender,
            receiver,
            network=self,
            name=f"{self.name}.rms{next(_setup_ids)}",
        )
        if flow is None:
            flow = self._next_flow(sender.host, receiver.host)
        plan = self._route_plan(sender.host, receiver.host, flow)
        if plan is not None:
            # The pinned plan's path is the admitted contract: route and
            # reservations both follow it (it may be an equal-cost
            # sibling of the canonical shortest path under ECMP).
            route = plan.route
        rms.flow_key = flow
        rms.route = route
        rms.plan = plan
        admitted: List[AdmissionController] = []
        try:
            for pool in self._admission_pools(route):
                pool.admit(rms.rms_id, actual)
                admitted.append(pool)
        except Exception:
            for pool in admitted:
                pool.release(rms.rms_id)
            raise
        self._rms_table[rms.rms_id] = rms
        self.setup_count += 1
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter("net_setup_count", network=self.name).inc()
        future = Future(self.context.loop)
        pending = _PendingSetup(future=future)
        self._pending_setups[rms.rms_id] = pending
        self._send_control(rms, "setup")
        pending.timer = self.context.loop.call_after(
            self.setup_timeout, self._setup_timeout, rms.rms_id
        )
        self.context.tracer.record(
            "net", "setup_start", net=self.name, rms=rms.name
        )
        return future

    def _setup_timeout(self, rms_id: int) -> None:
        pending = self._pending_setups.get(rms_id)
        rms = self._rms_table.get(rms_id)
        if pending is None or rms is None:
            return
        pending.attempts += 1
        if pending.attempts > self.setup_retries:
            self._pending_setups.pop(rms_id, None)
            self._release(rms)
            rms.fail("setup timed out")
            pending.future.set_exception(
                NetworkError(f"RMS setup to {rms.receiver.host} timed out")
            )
            return
        self._send_control(rms, "setup")
        pending.timer = self.context.loop.call_after(
            self.setup_timeout * (2 ** pending.attempts),
            self._setup_timeout,
            rms_id,
        )

    def delete_rms(self, rms: NetworkRms) -> None:
        """Tear an RMS down and release its reservations."""
        if rms.rms_id not in self._rms_table:
            return
        self._send_control(rms, "teardown")
        self._release(rms)
        rms.delete()

    def _release(self, rms: NetworkRms) -> None:
        self._rms_table.pop(rms.rms_id, None)
        for pool in self._admission_pools(rms.route):
            pool.release(rms.rms_id)

    def _send_control(self, rms: NetworkRms, kind: str) -> None:
        message = Message(
            b"\x00" * SETUP_PAYLOAD_BYTES,
            source=rms.sender,
            target=rms.receiver,
            headers={"op": kind},
        )
        src, dst = rms.sender.host, rms.receiver.host
        if kind == "setup_ack":
            src, dst = dst, src
        frame = Frame(
            message=message,
            src_host=src,
            dst_host=dst,
            rms_id=rms.rms_id,
            kind=kind,
            deadline=self.context.now,  # control traffic goes first
        )
        self._transmit_frame(frame, on_drop=self._control_dropped)

    def _control_dropped(self, frame: Frame, reason: str) -> None:
        """A dropped control frame; the setup retry timer recovers."""
        self.context.tracer.record(
            "net", "control_drop", net=self.name, kind=frame.kind, reason=reason
        )
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "net_control_drops", network=self.name, kind=frame.kind
            ).inc()

    # -- incoming traffic -------------------------------------------------------

    def listen_incoming(
        self, host_name: str, callback: Callable[[NetworkRms], None]
    ) -> None:
        """Register a per-host handler for RMSs created by remote peers."""
        self._require_host(host_name)
        self._incoming_listeners.setdefault(host_name, []).append(callback)

    def register_quench_handler(
        self, host_name: str, callback: Callable[[Frame], None]
    ) -> None:
        """Register a source-quench receiver (used by the TCP baseline)."""
        self._quench_handlers[host_name] = callback

    def _frame_arrived(self, frame: Frame) -> None:
        """Demultiplex one frame at its destination host."""
        if frame.kind == "data":
            rms = self._rms_table.get(frame.rms_id)
            if rms is None or rms.state is not RmsState.OPEN:
                self._recycle_frame(frame)
                return  # stale traffic for a deleted stream
            self.frames_delivered += 1
            if frame.corrupted:
                self.frames_corrupted_delivered += 1
            obs = self.context.obs
            if obs.enabled:
                obs.metrics.counter(
                    "net_frames_delivered", network=self.name
                ).inc()
                if frame.corrupted:
                    obs.metrics.counter(
                        "net_frames_corrupted", network=self.name
                    ).inc()
            rms._frame_arrived(frame)
            self._recycle_frame(frame)
        elif frame.kind == "setup":
            rms = self._rms_table.get(frame.rms_id)
            if rms is None:
                return
            for listener in self._incoming_listeners.get(frame.dst_host, []):
                listener(rms)
            self._send_control(rms, "setup_ack")
        elif frame.kind == "setup_ack":
            pending = self._pending_setups.pop(frame.rms_id, None)
            rms = self._rms_table.get(frame.rms_id)
            if pending is not None and rms is not None:
                if pending.timer is not None:
                    pending.timer.cancel()
                rms.established = True
                self.context.tracer.record(
                    "net", "setup_done", net=self.name, rms=rms.name
                )
                pending.future.set_result(rms)
        elif frame.kind == "teardown":
            rms = self._rms_table.get(frame.rms_id)
            if rms is not None:
                self._release(rms)
                rms.delete()
        elif frame.kind == "quench":
            handler = self._quench_handlers.get(frame.dst_host)
            if handler is not None:
                handler(frame)

    # -- failure ---------------------------------------------------------------

    def _fail_rms_on_route(self, dead_node_pair: Tuple[str, str], reason: str) -> None:
        """Fail every RMS whose route crosses the given adjacent pair."""
        for rms in list(self._rms_table.values()):
            route = rms.route
            for i in range(len(route) - 1):
                hop = (route[i], route[i + 1])
                if hop == dead_node_pair or hop == dead_node_pair[::-1]:
                    self._release(rms)
                    rms.fail(reason)
                    break

    def fail_all(self, reason: str = "network failure") -> None:
        """Fail every RMS on this network (e.g. the segment went down)."""
        for rms in list(self._rms_table.values()):
            self._release(rms)
            rms.fail(reason)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} hosts={len(self.hosts)} "
            f"rms={len(self._rms_table)}>"
        )
