"""Hosts and links: the physical pieces of simulated networks.

A :class:`Link` serializes frames at a fixed bandwidth with a
propagation delay, holds a bounded, deadline-ordered transmission queue
(section 4.3.1: "transmission deadlines determine the order in which
messages are sent"), and applies an impairment model.  A :class:`Host`
owns a CPU (for deadline-scheduled protocol processing, section 4.1) and
its network attachments.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import NetworkError
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.packet import Frame
from repro.sched.cpu import CpuCostModel, HostCpu
from repro.sched.policies import ReadyQueue, make_queue
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port

__all__ = ["Link", "Host", "LinkStats"]


class LinkStats:
    """Counters for one link."""

    def __init__(self) -> None:
        self.frames_transmitted = 0
        self.bytes_transmitted = 0
        self.frames_dropped_overrun = 0
        self.frames_dropped_loss = 0
        self.frames_corrupted = 0
        self.max_queue_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<LinkStats tx={self.frames_transmitted} overrun="
            f"{self.frames_dropped_overrun} lost={self.frames_dropped_loss} "
            f"corrupt={self.frames_corrupted}>"
        )


class Link:
    """A simplex transmission resource with a bounded deadline queue.

    ``deliver`` (per-transmit) is invoked at the far end after
    transmission and propagation.  Frames offered while the queue holds
    ``buffer_bytes`` are dropped as buffer overruns.  Queue order follows
    the configured policy; EDF realizes the paper's deadline-based
    interface scheduling, FIFO is the ablation baseline.
    """

    def __init__(
        self,
        context: SimContext,
        name: str,
        bandwidth: float,  # bytes per second
        propagation_delay: float,  # seconds
        buffer_bytes: int = 256 * 1024,
        policy: str = "edf",
        impairment: Optional[ImpairmentModel] = None,
    ) -> None:
        if bandwidth <= 0:
            raise NetworkError(f"link bandwidth must be > 0: {bandwidth}")
        if propagation_delay < 0:
            raise NetworkError(f"propagation delay must be >= 0: {propagation_delay}")
        self.context = context
        self.name = name
        self.bandwidth = bandwidth
        self.propagation_delay = propagation_delay
        self.buffer_bytes = buffer_bytes
        self.impairment = impairment or ImpairmentModel()
        self._queue: ReadyQueue = make_queue(policy)
        self.policy = policy
        self._queued_bytes = 0
        self._busy = False
        self._up = True
        self.stats = LinkStats()
        self.on_down: Signal = Signal(context.loop)
        self.on_up: Signal = Signal(context.loop)
        self._rng = context.rng.stream(f"link:{name}")
        #: Optional observer of overruns (used by source-quench gateways).
        self.on_overrun: Optional[Callable[[Frame], None]] = None

    @property
    def is_up(self) -> bool:
        return self._up

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def transmission_time(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth

    def transmit(
        self,
        frame: Frame,
        deliver: Callable[[Frame], None],
        on_drop: Optional[Callable[[Frame, str], None]] = None,
    ) -> bool:
        """Queue ``frame`` for transmission; returns False on overrun drop."""
        if not self._up:
            if on_drop is not None:
                on_drop(frame, "link down")
            return False
        size = frame.size
        queued = self._queued_bytes + size
        if queued > self.buffer_bytes:
            self.stats.frames_dropped_overrun += 1
            self.context.tracer.record(
                "link", "overrun", link=self.name, frame=frame.frame_id
            )
            if self.on_overrun is not None:
                self.on_overrun(frame)
            if on_drop is not None:
                on_drop(frame, "buffer overrun")
            return False
        frame.enqueued_at = self.context.loop._now
        self._queued_bytes = queued
        if queued > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = queued
        if self._busy or self._queue:
            self._queue.push((frame, deliver, on_drop), deadline=frame.deadline)
        else:
            # Idle link, empty interface queue: start transmitting
            # directly (any policy pops a singleton heap identically).
            self._begin(frame, deliver, on_drop)
        return True

    def _start_next(self) -> None:
        if self._busy or not self._queue or not self._up:
            return
        frame, deliver, on_drop = self._queue.pop()
        self._begin(frame, deliver, on_drop)

    def _begin(
        self,
        frame: Frame,
        deliver: Callable[[Frame], None],
        on_drop: Optional[Callable[[Frame, str], None]],
    ) -> None:
        self._busy = True
        self.context.loop.call_after(
            frame.size / self.bandwidth,
            self._transmission_done,
            frame,
            deliver,
            on_drop,
        )

    def _transmission_done(
        self,
        frame: Frame,
        deliver: Callable[[Frame], None],
        on_drop: Optional[Callable[[Frame, str], None]],
    ) -> None:
        self._busy = False
        self._queued_bytes -= frame.size
        if not self._up:
            if on_drop is not None:
                on_drop(frame, "link down")
            return
        self.stats.frames_transmitted += 1
        self.stats.bytes_transmitted += frame.size
        if self.impairment.loses_frame(self._rng):
            self.stats.frames_dropped_loss += 1
            self.context.tracer.record(
                "link", "loss", link=self.name, frame=frame.frame_id
            )
            if on_drop is not None:
                on_drop(frame, "medium loss")
        else:
            if self.impairment.maybe_corrupt(frame, self._rng):
                self.stats.frames_corrupted += 1
                self.context.tracer.record(
                    "link", "corrupt", link=self.name, frame=frame.frame_id
                )
            self.context.loop.call_after(self.propagation_delay, deliver, frame)
        self._start_next()

    def set_down(self) -> None:
        """Fail the link; queued frames are discarded, listeners notified."""
        if not self._up:
            return
        self._up = False
        while self._queue:
            frame, _deliver, on_drop = self._queue.pop()
            self._queued_bytes -= frame.size
            if on_drop is not None:
                on_drop(frame, "link down")
        self.on_down.fire(self)

    def set_up(self) -> None:
        """Restore the link and resume transmission of queued frames."""
        if self._up:
            return
        self._up = True
        self._start_next()
        self.on_up.fire(self)

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"<Link {self.name} {state} queued={self._queued_bytes}B>"


class Host:
    """A simulated machine: a name, a CPU, named ports, attachments."""

    def __init__(
        self,
        context: SimContext,
        name: str,
        cpu_policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
    ) -> None:
        self.context = context
        self.name = name
        self.cpu = HostCpu(context, name=f"{name}.cpu", policy=cpu_policy,
                           cost_model=cost_model)
        self.ports: Dict[str, Port] = {}
        self.networks: Dict[str, "object"] = {}  # network name -> network

    def bind_port(self, port_name: str) -> Port:
        """Create (or return) a named passive port on this host."""
        if port_name not in self.ports:
            self.ports[port_name] = Port(
                self.context.loop, name=f"{self.name}:{port_name}"
            )
        return self.ports[port_name]

    def pause(self) -> None:
        """Chaos hook: freeze protocol processing on this host's CPU."""
        self.cpu.pause()

    def resume(self) -> None:
        """Undo :meth:`pause`; queued protocol stages dispatch again."""
        self.cpu.resume()

    def __repr__(self) -> str:
        return f"<Host {self.name} nets={sorted(self.networks)}>"
