"""Hosts and links: the physical pieces of simulated networks.

A :class:`Link` serializes frames at a fixed bandwidth with a
propagation delay, holds a bounded, deadline-ordered transmission queue
(section 4.3.1: "transmission deadlines determine the order in which
messages are sent"), and applies an impairment model.  A :class:`Host`
owns a CPU (for deadline-scheduled protocol processing, section 4.1) and
its network attachments.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import NetworkError
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.packet import Frame
from repro.sched.cpu import CpuCostModel, HostCpu
from repro.sched.policies import ReadyQueue, make_queue
from repro.sim.context import SimContext
from repro.sim.events import Signal
from repro.sim.ports import Port

__all__ = [
    "Link",
    "Host",
    "LinkStats",
    "Mesh",
    "MeshSpec",
    "build_grid",
    "build_star_of_routers",
    "build_two_tier",
]

#: Upper bound on frames committed per transmit burst; bounds both the
#: worst-case burst-break cost and how far ahead of the clock delivery
#: events are scheduled.
_BURST_FRAMES = 16

# _Burst.entries columns: (end_time, frame, deliver, on_drop,
# delivery_handle, queue_key, queue_seq).
_B_END = 0
_B_FRAME = 1
_B_KEY = 5


class _Burst:
    """One committed multi-frame transmission on an idle, clean link."""

    __slots__ = ("entries", "settled", "completion")

    def __init__(self, entries, completion) -> None:
        self.entries = entries
        #: Index of the first entry whose transmission end lies in the
        #: future; everything before it has been accounted (stats and
        #: queued-byte settlement happen lazily, at observation points).
        self.settled = 0
        self.completion = completion


class LinkStats:
    """Counters for one link."""

    def __init__(self) -> None:
        self.frames_transmitted = 0
        self.bytes_transmitted = 0
        self.frames_dropped_overrun = 0
        self.frames_dropped_loss = 0
        self.frames_corrupted = 0
        self.max_queue_bytes = 0

    def __repr__(self) -> str:
        return (
            f"<LinkStats tx={self.frames_transmitted} overrun="
            f"{self.frames_dropped_overrun} lost={self.frames_dropped_loss} "
            f"corrupt={self.frames_corrupted}>"
        )


class Link:
    """A simplex transmission resource with a bounded deadline queue.

    ``deliver`` (per-transmit) is invoked at the far end after
    transmission and propagation.  Frames offered while the queue holds
    ``buffer_bytes`` are dropped as buffer overruns.  Queue order follows
    the configured policy; EDF realizes the paper's deadline-based
    interface scheduling, FIFO is the ablation baseline.
    """

    def __init__(
        self,
        context: SimContext,
        name: str,
        bandwidth: float,  # bytes per second
        propagation_delay: float,  # seconds
        buffer_bytes: int = 256 * 1024,
        policy: str = "edf",
        impairment: Optional[ImpairmentModel] = None,
        batch_transmit: bool = False,
    ) -> None:
        if bandwidth <= 0:
            raise NetworkError(f"link bandwidth must be > 0: {bandwidth}")
        if propagation_delay < 0:
            raise NetworkError(f"propagation delay must be >= 0: {propagation_delay}")
        self.context = context
        self.name = name
        self.bandwidth = bandwidth
        self.propagation_delay = propagation_delay
        self.buffer_bytes = buffer_bytes
        self.impairment = impairment or ImpairmentModel()
        self._queue: ReadyQueue = make_queue(policy)
        self.policy = policy
        self._queued_bytes = 0
        self._busy = False
        self._up = True
        #: Transmit batching: when the link goes idle with several frames
        #: queued and the impairment is inert (no loss, no corruption --
        #: so no RNG draws are elided), commit a burst of up to
        #: _BURST_FRAMES transmissions as ONE completion event plus one
        #: pre-scheduled delivery per frame, instead of a completion/
        #: delivery event pair per frame.  Per-frame end and delivery
        #: times are the bit-identical floats of the per-frame path; a
        #: burst is broken back to per-frame service when a new arrival
        #: would have preempted an uncommitted frame under the queue
        #: policy, or when the link goes down.
        self._batch = batch_transmit
        self._burst: Optional[_Burst] = None
        self.stats = LinkStats()
        self.on_down: Signal = Signal(context.loop)
        self.on_up: Signal = Signal(context.loop)
        self._rng = context.rng.stream(f"link:{name}")
        #: Optional observer of overruns (used by source-quench gateways).
        self.on_overrun: Optional[Callable[[Frame], None]] = None

    @property
    def is_up(self) -> bool:
        return self._up

    @property
    def queued_bytes(self) -> int:
        if self._burst is not None:
            self._settle_burst()
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        burst = self._burst
        if burst is not None:
            self._settle_burst()
            # Committed-but-untransmitted burst frames are logically still
            # queued; the one on the wire is not (it matches the popped
            # in-flight frame of per-frame service).
            waiting = len(burst.entries) - burst.settled - 1
            return len(self._queue) + (waiting if waiting > 0 else 0)
        return len(self._queue)

    def transmission_time(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth

    def transmit(
        self,
        frame: Frame,
        deliver: Callable[[Frame], None],
        on_drop: Optional[Callable[[Frame, str], None]] = None,
    ) -> bool:
        """Queue ``frame`` for transmission; returns False on overrun drop."""
        if not self._up:
            if on_drop is not None:
                on_drop(frame, "link down")
            return False
        if self._burst is not None:
            self._settle_burst()
        size = frame.size
        queued = self._queued_bytes + size
        if queued > self.buffer_bytes:
            self.stats.frames_dropped_overrun += 1
            self.context.tracer.record(
                "link", "overrun", link=self.name, frame=frame.frame_id
            )
            if self.on_overrun is not None:
                self.on_overrun(frame)
            if on_drop is not None:
                on_drop(frame, "buffer overrun")
            return False
        frame.enqueued_at = self.context.loop._now
        self._queued_bytes = queued
        if queued > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = queued
        burst = self._burst
        if burst is not None:
            entries = burst.entries
            if (
                len(entries) - burst.settled > 1
                and self._queue.order_key(frame.deadline) < entries[-1][_B_KEY]
            ):
                # Per-frame service would have transmitted this frame
                # before an uncommitted burst frame: un-commit the tail
                # (restoring exact queue positions) and fall through to
                # the normal busy-link enqueue below.
                self._break_burst()
            else:
                self._queue.push((frame, deliver, on_drop), deadline=frame.deadline)
                return True
        if self._busy or self._queue:
            self._queue.push((frame, deliver, on_drop), deadline=frame.deadline)
        else:
            # Idle link, empty interface queue: start transmitting
            # directly (any policy pops a singleton heap identically).
            self._begin(frame, deliver, on_drop)
        return True

    def _start_next(self) -> None:
        if self._busy or not self._queue or not self._up:
            return
        if self._batch and len(self._queue) > 1 and self.impairment.is_clean:
            self._begin_burst()
            return
        frame, deliver, on_drop = self._queue.pop()
        self._begin(frame, deliver, on_drop)

    def _begin_burst(self) -> None:
        """Commit up to _BURST_FRAMES queued frames as one transmission
        burst: a single completion event at the last frame's end, one
        pre-scheduled delivery per frame at its exact per-frame time."""
        loop = self.context.loop
        queue = self._queue
        bandwidth = self.bandwidth
        prop = self.propagation_delay
        count = len(queue)
        if count > _BURST_FRAMES:
            count = _BURST_FRAMES
        entries = []
        end = loop._now
        for _ in range(count):
            key, seq, (frame, deliver, on_drop) = queue.pop_entry()
            # The same float operations, in the same order, as per-frame
            # service (call_after at each boundary): delivery times are
            # bit-identical.
            end += frame.size / bandwidth
            handle = loop.call_at(end + prop, deliver, frame)
            entries.append((end, frame, deliver, on_drop, handle, key, seq))
        self._busy = True
        completion = loop.call_at(end, self._burst_done)
        self._burst = _Burst(entries, completion)

    def _settle_burst(self) -> None:
        """Account burst frames whose transmission has ended by now: the
        per-frame path updated stats and queued bytes at each frame's
        completion event; the burst settles the same numbers lazily at
        every observation point (transmit, queue introspection, break,
        completion)."""
        burst = self._burst
        now = self.context.loop._now
        entries = burst.entries
        i = burst.settled
        total = len(entries)
        stats = self.stats
        while i < total and entries[i][_B_END] <= now:
            size = entries[i][_B_FRAME].size
            self._queued_bytes -= size
            stats.frames_transmitted += 1
            stats.bytes_transmitted += size
            i += 1
        burst.settled = i

    def _burst_done(self) -> None:
        self._settle_burst()
        self._burst = None
        self._busy = False
        self._start_next()

    def _break_burst(self) -> None:
        """Revert an in-progress burst to per-frame service.

        The frame on the wire gets back its legacy completion event (and
        re-creates its delivery there, exactly as per-frame service
        would); uncommitted frames return to the interface queue in their
        original positions, original tie-break order included."""
        burst = self._burst
        self._settle_burst()
        burst.completion.cancel()
        self._burst = None
        entries = burst.entries
        i = burst.settled
        if i == len(entries):
            # Every frame already finished transmitting (break raced the
            # completion event at its exact timestamp): nothing is on the
            # wire and the deliveries are already in flight.
            self._busy = False
            return
        end, frame, deliver, on_drop, handle, _key, _seq = entries[i]
        handle.cancel()
        self.context.loop.call_at(end, self._transmission_done, frame, deliver, on_drop)
        # _busy stays True until that completion fires.
        for j in range(i + 1, len(entries)):
            entry = entries[j]
            entry[4].cancel()
            self._queue.push_entry((entry[5], entry[6], (entry[1], entry[2], entry[3])))

    def _begin(
        self,
        frame: Frame,
        deliver: Callable[[Frame], None],
        on_drop: Optional[Callable[[Frame, str], None]],
    ) -> None:
        self._busy = True
        self.context.loop.call_after(
            frame.size / self.bandwidth,
            self._transmission_done,
            frame,
            deliver,
            on_drop,
        )

    def _transmission_done(
        self,
        frame: Frame,
        deliver: Callable[[Frame], None],
        on_drop: Optional[Callable[[Frame, str], None]],
    ) -> None:
        self._busy = False
        self._queued_bytes -= frame.size
        if not self._up:
            if on_drop is not None:
                on_drop(frame, "link down")
            return
        self.stats.frames_transmitted += 1
        self.stats.bytes_transmitted += frame.size
        if self.impairment.loses_frame(self._rng):
            self.stats.frames_dropped_loss += 1
            self.context.tracer.record(
                "link", "loss", link=self.name, frame=frame.frame_id
            )
            if on_drop is not None:
                on_drop(frame, "medium loss")
        else:
            if self.impairment.maybe_corrupt(frame, self._rng):
                self.stats.frames_corrupted += 1
                self.context.tracer.record(
                    "link", "corrupt", link=self.name, frame=frame.frame_id
                )
            self.context.loop.call_after(self.propagation_delay, deliver, frame)
        self._start_next()

    def set_down(self) -> None:
        """Fail the link; queued frames are discarded, listeners notified."""
        if not self._up:
            return
        self._up = False
        if self._burst is not None:
            # Un-commit the burst first: its waiting frames rejoin the
            # queue (original positions) and are discarded below exactly
            # like per-frame service would discard them; the frame on the
            # wire keeps transmitting and its completion event applies
            # the usual link-down rules.
            self._break_burst()
        while self._queue:
            frame, _deliver, on_drop = self._queue.pop()
            self._queued_bytes -= frame.size
            if on_drop is not None:
                on_drop(frame, "link down")
        self.on_down.fire(self)

    def set_up(self) -> None:
        """Restore the link and resume transmission of queued frames."""
        if self._up:
            return
        self._up = True
        self._start_next()
        self.on_up.fire(self)

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"<Link {self.name} {state} queued={self._queued_bytes}B>"


class Host:
    """A simulated machine: a name, a CPU, named ports, attachments."""

    def __init__(
        self,
        context: SimContext,
        name: str,
        cpu_policy: str = "edf",
        cost_model: Optional[CpuCostModel] = None,
    ) -> None:
        self.context = context
        self.name = name
        self.cpu = HostCpu(context, name=f"{name}.cpu", policy=cpu_policy,
                           cost_model=cost_model)
        self.ports: Dict[str, Port] = {}
        self.networks: Dict[str, "object"] = {}  # network name -> network

    def bind_port(self, port_name: str) -> Port:
        """Create (or return) a named passive port on this host."""
        if port_name not in self.ports:
            self.ports[port_name] = Port(
                self.context.loop, name=f"{self.name}:{port_name}"
            )
        return self.ports[port_name]

    def pause(self) -> None:
        """Chaos hook: freeze protocol processing on this host's CPU."""
        self.cpu.pause()

    def resume(self) -> None:
        """Undo :meth:`pause`; queued protocol stages dispatch again."""
        self.cpu.resume()

    def __repr__(self) -> str:
        return f"<Host {self.name} nets={sorted(self.networks)}>"


# -- mesh builders (scale-out benchmarking, section 4.3) ---------------------
#
# The paper's internetwork is "point-to-point links between packet
# switches"; these helpers stamp out the standard switch fabrics used by
# the scale-out routing benchmarks: a grid (long multi-hop paths), a
# star of routers (a shared core every path crosses), and a two-tier
# spine/leaf fabric (many equal-cost core crossings).  They only *build*
# topology -- hosts come from an ``attach_host`` callback so the same
# builders serve plain netsim benches and full DASH systems.


class MeshSpec:
    """Link parameters shared by the mesh builders.

    Trunk links connect routers; access links connect hosts to their
    edge router.  Access links are faster and shorter so router-to-
    router forwarding, not the last hop, dominates path cost.
    """

    __slots__ = (
        "trunk_bandwidth", "trunk_delay", "access_bandwidth",
        "access_delay", "buffer_bytes",
    )

    def __init__(
        self,
        trunk_bandwidth: float = 1.25e6,
        trunk_delay: float = 1e-3,
        access_bandwidth: float = 2.5e6,
        access_delay: float = 2e-4,
        buffer_bytes: int = 64 * 1024,
    ) -> None:
        self.trunk_bandwidth = trunk_bandwidth
        self.trunk_delay = trunk_delay
        self.access_bandwidth = access_bandwidth
        self.access_delay = access_delay
        self.buffer_bytes = buffer_bytes


class Mesh:
    """What a mesh builder made: node names by role."""

    __slots__ = ("routers", "hosts", "host_router")

    def __init__(self, routers, hosts, host_router) -> None:
        self.routers: list = routers
        self.hosts: list = hosts
        #: host name -> its edge router's name.
        self.host_router: Dict[str, str] = host_router

    def __repr__(self) -> str:
        return f"<Mesh routers={len(self.routers)} hosts={len(self.hosts)}>"


def _require_size(value: int, floor: int, what: str, why: str) -> None:
    # Builder shape validation.  Degenerate sizes used to produce
    # *silently* broken meshes (a 1xN "grid" is a chain, a single-spine
    # "fabric" has no path diversity); reject them loudly instead.
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(f"{what} must be an integer, got {value!r}")
    if value < floor:
        raise ValueError(f"{what} must be >= {floor} ({why}), got {value}")


def _default_attach_host(network, name: str) -> str:
    network.attach(Host(network.context, name))
    return name


def _attach_hosts(network, mesh, router, count, prefix, spec, attach_host):
    attach = attach_host or _default_attach_host
    for _ in range(count):
        name = attach(network, f"{prefix}{len(mesh.hosts)}")
        network.add_link(
            name, router,
            bandwidth=spec.access_bandwidth,
            propagation_delay=spec.access_delay,
            buffer_bytes=spec.buffer_bytes,
        )
        mesh.hosts.append(name)
        mesh.host_router[name] = router


def build_grid(
    network,
    rows: int,
    cols: int,
    hosts_per_router: int = 1,
    spec: Optional[MeshSpec] = None,
    attach_host: Optional[Callable[[object, str], str]] = None,
    host_prefix: str = "h",
) -> Mesh:
    """A rows x cols router grid with 4-neighbor trunks.

    Worst-case paths are ``rows + cols`` hops, so this is the builder
    that stresses multi-hop forwarding cost.
    """
    _require_size(rows, 2, "grid rows", "a 1xN grid degenerates to a chain")
    _require_size(cols, 2, "grid cols", "an Nx1 grid degenerates to a chain")
    _require_size(hosts_per_router, 0, "hosts_per_router", "cannot be negative")
    spec = spec or MeshSpec()
    mesh = Mesh([], [], {})
    for row in range(rows):
        for col in range(cols):
            name = f"g{row}x{col}"
            network.add_router(name)
            mesh.routers.append(name)
    for row in range(rows):
        for col in range(cols):
            name = f"g{row}x{col}"
            if col + 1 < cols:
                network.add_link(
                    name, f"g{row}x{col + 1}",
                    bandwidth=spec.trunk_bandwidth,
                    propagation_delay=spec.trunk_delay,
                    buffer_bytes=spec.buffer_bytes,
                )
            if row + 1 < rows:
                network.add_link(
                    name, f"g{row + 1}x{col}",
                    bandwidth=spec.trunk_bandwidth,
                    propagation_delay=spec.trunk_delay,
                    buffer_bytes=spec.buffer_bytes,
                )
    for router in mesh.routers:
        _attach_hosts(
            network, mesh, router, hosts_per_router, host_prefix, spec,
            attach_host,
        )
    return mesh


def build_star_of_routers(
    network,
    arms: int,
    hosts_per_arm: int = 1,
    spec: Optional[MeshSpec] = None,
    attach_host: Optional[Callable[[object, str], str]] = None,
    host_prefix: str = "h",
    core_name: str = "core",
) -> Mesh:
    """Arm routers around one core; every cross-arm path shares the core.

    The degenerate fabric: invalidating a core-adjacent link touches
    most routes, so this is the builder that stresses invalidation.
    """
    _require_size(arms, 2, "star arms", "one arm has no cross-arm traffic")
    _require_size(hosts_per_arm, 0, "hosts_per_arm", "cannot be negative")
    spec = spec or MeshSpec()
    mesh = Mesh([], [], {})
    network.add_router(core_name)
    mesh.routers.append(core_name)
    for arm in range(arms):
        name = f"arm{arm}"
        network.add_router(name)
        mesh.routers.append(name)
        network.add_link(
            name, core_name,
            bandwidth=spec.trunk_bandwidth,
            propagation_delay=spec.trunk_delay,
            buffer_bytes=spec.buffer_bytes,
        )
        _attach_hosts(
            network, mesh, name, hosts_per_arm, host_prefix, spec,
            attach_host,
        )
    return mesh


def build_two_tier(
    network,
    spines: int,
    leaves: int,
    hosts_per_leaf: int = 1,
    spec: Optional[MeshSpec] = None,
    attach_host: Optional[Callable[[object, str], str]] = None,
    host_prefix: str = "h",
) -> Mesh:
    """A fat-tree-ish spine/leaf fabric: full spine-leaf bipartite trunks.

    Many equal-cost two-trunk paths cross the core, so this is the
    builder that stresses tie-breaking stability and table reuse (and,
    under ECMP, flow spreading across the spine trunks).
    """
    _require_size(spines, 2, "two-tier spines",
                  "a single spine has no equal-cost path diversity")
    _require_size(leaves, 2, "two-tier leaves",
                  "one leaf has no inter-leaf traffic")
    _require_size(hosts_per_leaf, 0, "hosts_per_leaf", "cannot be negative")
    spec = spec or MeshSpec()
    mesh = Mesh([], [], {})
    for spine in range(spines):
        name = f"spine{spine}"
        network.add_router(name)
        mesh.routers.append(name)
    for leaf in range(leaves):
        name = f"leaf{leaf}"
        network.add_router(name)
        mesh.routers.append(name)
        for spine in range(spines):
            network.add_link(
                name, f"spine{spine}",
                bandwidth=spec.trunk_bandwidth,
                propagation_delay=spec.trunk_delay,
                buffer_bytes=spec.buffer_bytes,
            )
        _attach_hosts(
            network, mesh, name, hosts_per_leaf, host_prefix, spec,
            attach_host,
        )
    return mesh
