"""Chaos schedules: deterministic fault injection for netsim.

The resilience layer (and bench E17) needs repeatable failures to
recover from.  A :class:`ChaosSchedule` scripts link flaps, network
partitions, and host pause/resume against the simulation clock, and can
also generate seeded-random flap processes from the context's named RNG
streams -- the same schedule object with the same seed always injects
the same faults at the same times.  Every injected event is recorded in
:attr:`ChaosSchedule.log` so a bench can print exactly what it did.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

from repro.netsim.topology import Host, Link
from repro.sim.context import SimContext

__all__ = ["ChaosEvent", "ChaosSchedule"]


class ChaosEvent(NamedTuple):
    time: float
    kind: str
    target: str


class ChaosSchedule:
    """Scripted and seeded-random fault injection against one context."""

    def __init__(self, context: SimContext, name: str = "chaos") -> None:
        self.context = context
        self.name = name
        self.log: List[ChaosEvent] = []
        self._rng = context.rng.stream(f"chaos:{name}")

    # -- bookkeeping ------------------------------------------------------

    def _record(self, kind: str, target: str) -> None:
        self.log.append(ChaosEvent(self.context.now, kind, target))
        self.context.tracer.record("chaos", kind, schedule=self.name,
                                   target=target)
        obs = self.context.obs
        if obs.enabled:
            obs.metrics.counter(
                "chaos_events_total", schedule=self.name, kind=kind
            ).inc()

    def _down(self, link: Link) -> None:
        if link.is_up:
            self._record("link_down", link.name)
            link.set_down()

    def _up(self, link: Link) -> None:
        if not link.is_up:
            self._record("link_up", link.name)
            link.set_up()

    # -- scripted faults --------------------------------------------------

    def at(self, time: float, action, *args) -> None:
        """Run an arbitrary fault action at an absolute simulation time."""
        self.context.loop.call_at(time, action, *args)

    def link_down_at(self, time: float, link: Link) -> None:
        self.at(time, self._down, link)

    def link_up_at(self, time: float, link: Link) -> None:
        self.at(time, self._up, link)

    def flap_link(self, link: Link, down_at: float, duration: float) -> None:
        """One outage: down at ``down_at``, back up ``duration`` later."""
        self.link_down_at(down_at, link)
        self.link_up_at(down_at + duration, link)

    def flap_periodic(
        self,
        link: Link,
        first_down: float,
        period: float,
        down_time: float,
        count: int,
    ) -> None:
        """``count`` outages of ``down_time`` seconds, ``period`` apart."""
        for index in range(count):
            self.flap_link(link, first_down + index * period, down_time)

    def pause_host_at(self, host: Host, time: float, duration: float) -> None:
        """Freeze a host's CPU for ``duration`` seconds (e.g. a GC stall)."""
        def pause() -> None:
            self._record("host_pause", host.name)
            host.pause()

        def resume() -> None:
            self._record("host_resume", host.name)
            host.resume()

        self.at(time, pause)
        self.at(time + duration, resume)

    def partition_at(
        self,
        internet,
        time: float,
        group: Iterable[str],
        heal_at: Optional[float] = None,
    ) -> None:
        """Partition a routed internetwork along a node cut.

        Every simplex link with exactly one endpoint in ``group`` goes
        down at ``time``; when ``heal_at`` is given they all come back.
        """
        members = set(group)

        def crossing() -> List[Link]:
            return [
                link
                for (src, dst), link in internet._links.items()
                if (src in members) != (dst in members)
            ]

        def cut() -> None:
            self._record("partition", ",".join(sorted(members)))
            for link in crossing():
                self._down(link)

        def heal() -> None:
            self._record("heal", ",".join(sorted(members)))
            for link in crossing():
                self._up(link)

        self.at(time, cut)
        if heal_at is not None:
            self.at(heal_at, heal)

    # -- seeded-random faults ---------------------------------------------

    def random_flaps(
        self,
        link: Link,
        mean_uptime: float,
        mean_downtime: float,
        until: float,
        start: float = 0.0,
    ) -> None:
        """Flap a link with exponentially distributed up/down periods.

        Draws come from this schedule's own RNG stream, so two runs with
        the same master seed inject identical flap sequences.
        """

        def flow():
            if start > self.context.now:
                yield start - self.context.now
            while True:
                up_for = self._rng.expovariate(1.0 / mean_uptime)
                if self.context.now + up_for >= until:
                    return
                yield up_for
                self._down(link)
                down_for = self._rng.expovariate(1.0 / mean_downtime)
                yield down_for
                self._up(link)
                if self.context.now >= until:
                    return

        self.context.spawn(flow(), name=f"chaos:{self.name}:{link.name}")

    def __repr__(self) -> str:
        return f"<ChaosSchedule {self.name} events={len(self.log)}>"
