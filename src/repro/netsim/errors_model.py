"""Stochastic impairment models for simulated media.

The RMS bit-error-rate parameter "reflects the combination of 1) the
error rate of the underlying transmission medium, 2) the effectiveness
of the checksumming algorithm, and 3) the expected rate of packet loss
from buffer overrun" (section 2.2).  Medium errors are modeled here;
buffer overruns happen in the link queues; checksumming effectiveness is
whatever the security layer actually achieves over the corrupted bytes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ParameterError
from repro.netsim.packet import Frame

__all__ = ["ImpairmentModel"]


@dataclass
class ImpairmentModel:
    """Per-frame corruption and loss sampling.

    ``bit_error_rate`` is the per-bit corruption probability of the
    medium; a frame of ``n`` bytes is corrupted with probability
    ``1 - (1 - ber)^(8n)``.  ``frame_loss_rate`` models losses the medium
    itself eats (collisions, receiver overruns) independent of queueing.
    """

    bit_error_rate: float = 0.0
    frame_loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.bit_error_rate <= 1.0:
            raise ParameterError(f"bit error rate out of range: {self.bit_error_rate}")
        if not 0.0 <= self.frame_loss_rate <= 1.0:
            raise ParameterError(
                f"frame loss rate out of range: {self.frame_loss_rate}"
            )

    def corruption_probability(self, size_bytes: int) -> float:
        """Probability that a frame of the given size is corrupted."""
        if self.bit_error_rate <= 0.0:
            return 0.0
        return 1.0 - math.pow(1.0 - self.bit_error_rate, 8 * size_bytes)

    def loses_frame(self, rng: random.Random) -> bool:
        return self.frame_loss_rate > 0.0 and rng.random() < self.frame_loss_rate

    def maybe_corrupt(self, frame: Frame, rng: random.Random) -> bool:
        """Sample corruption; flips a payload bit on a hit.

        Returns True when the frame was corrupted.
        """
        probability = self.corruption_probability(frame.size)
        if probability > 0.0 and rng.random() < probability:
            frame.corrupt_payload(rng.getrandbits(20))
            return True
        return False

    @property
    def is_clean(self) -> bool:
        return self.bit_error_rate == 0.0 and self.frame_loss_rate == 0.0
