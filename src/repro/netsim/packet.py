"""Frames: what actually travels on simulated network media.

A frame wraps one network-level RMS message (or a network-maintenance
payload) with link framing overhead and routing fields.  Bit errors
corrupt the payload bytes of the wrapped message; framing and header
fields are assumed protected by link hardware (a simplification noted
in DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.message import Message

__all__ = ["Frame", "FRAME_OVERHEAD_BYTES", "next_frame_id"]

#: Link framing overhead accounted per frame (preamble, addresses, FCS).
FRAME_OVERHEAD_BYTES = 18

_frame_ids = itertools.count(1)


def next_frame_id() -> int:
    """A fresh frame id (shared with pooled-frame reinitialization)."""
    return next(_frame_ids)


@dataclass
class Frame:
    """One link-level frame."""

    message: Message
    src_host: str
    dst_host: str
    rms_id: int  # network RMS the frame belongs to (0 = maintenance)
    kind: str = "data"  # "data" | "setup" | "teardown" | "quench"
    deadline: float = 0.0
    #: Node names of the path the frame follows.  Routed networks with
    #: the forwarding engine bind this to the compiled plan's *shared*
    #: route list (never mutated; rebinding only), so per-frame route
    #: copies disappear from the datapath.
    route: List[str] = field(default_factory=list)
    hops_taken: int = 0
    corrupted: bool = False
    frame_id: int = field(default_factory=lambda: next(_frame_ids))
    enqueued_at: Optional[float] = None
    #: True while the frame participates in its network's frame pool
    #: (set by the acquiring network, cleared on recycle).  Frames built
    #: directly -- control traffic, tests -- never enter a pool.
    pooled: bool = False
    #: Per-frame drop callback, set at transmit time by the forwarding
    #: engine.  Compiled plans cache one deliver callback per *hop*, so
    #: the only per-frame state (which stream to notify on a drop) rides
    #: on the frame instead of being closed over per hop per frame.
    on_drop: Optional[Callable[["Frame", str], None]] = None

    # Cached wire size (unannotated: a plain class attribute, not a
    # dataclass field).  Valid because nothing resizes a message once a
    # frame wraps it -- bit corruption preserves length -- and pooled
    # frames reset it on reinitialization.
    _size = None

    @property
    def size(self) -> int:
        """Accounted bytes on the wire."""
        size = self._size
        if size is None:
            size = self._size = self.message.wire_size + FRAME_OVERHEAD_BYTES
        return size

    def corrupt_payload(self, bit_index: int) -> None:
        """Flip one payload bit in place (the message keeps its size)."""
        payload = bytearray(self.message.payload)
        if not payload:
            self.corrupted = True
            return
        byte_index = (bit_index // 8) % len(payload)
        payload[byte_index] ^= 1 << (bit_index % 8)
        self.message.payload = bytes(payload)
        self.corrupted = True

    def __repr__(self) -> str:
        return (
            f"<Frame #{self.frame_id} {self.kind} {self.src_host}->"
            f"{self.dst_host} rms={self.rms_id} {self.size}B>"
        )
