"""An Ethernet-like network: one shared broadcast segment.

Section 3.1's example of a local network.  All attached hosts share a
single transmission medium; frames queue at the segment in transmission-
deadline order (the paper's interface scheduling).  The segment has the
*physical broadcast property*: an eavesdropper that receives an entire
message implies the intended recipient does too -- modeled by sniffer
callbacks that observe every delivered frame.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.netsim.admission import AdmissionController
from repro.netsim.errors_model import ImpairmentModel
from repro.netsim.network import Network, NetworkProperties
from repro.netsim.packet import FRAME_OVERHEAD_BYTES, Frame
from repro.netsim.topology import Link
from repro.sim.context import SimContext

__all__ = ["EthernetNetwork"]


class EthernetNetwork(Network):
    """A single-segment broadcast network.

    Defaults model classic 10 Mbit/s Ethernet: 1.25 MB/s bandwidth,
    a few microseconds of propagation, a 1500-byte MTU.
    """

    def __init__(
        self,
        context: SimContext,
        name: str = "ether0",
        bandwidth: float = 1.25e6,  # bytes/second (10 Mbit/s)
        propagation_delay: float = 5e-6,
        buffer_bytes: int = 128 * 1024,
        mtu: int = 1500,
        trusted: bool = False,
        link_encryption: bool = False,
        link_checksum: bool = True,
        supports_guarantees: bool = True,
        bit_error_rate: float = 0.0,
        frame_loss_rate: float = 0.0,
        queue_policy: str = "edf",
        link_batching: bool = True,
    ) -> None:
        properties = NetworkProperties(
            trusted=trusted,
            physical_broadcast=True,
            link_encryption=link_encryption,
            link_checksum=link_checksum,
            mtu=mtu,
            supports_guarantees=supports_guarantees,
        )
        super().__init__(
            context, name, properties, medium_bit_error_rate=bit_error_rate
        )
        self.segment = Link(
            context,
            name=f"{name}.segment",
            bandwidth=bandwidth,
            propagation_delay=propagation_delay,
            buffer_bytes=buffer_bytes,
            policy=queue_policy,
            impairment=ImpairmentModel(
                bit_error_rate=bit_error_rate, frame_loss_rate=frame_loss_rate
            ),
            batch_transmit=link_batching,
        )
        self.segment.on_down.listen(
            lambda _link: self.fail_all("Ethernet segment down")
        )
        self._admission = AdmissionController(
            total_bandwidth=bandwidth, total_buffer_bytes=buffer_bytes
        )
        self._sniffers: List[Callable[[Frame], None]] = []

    def can_reach(self, src: str, dst: str) -> bool:
        """Reachable only while the shared segment is up."""
        return super().can_reach(src, dst) and self.segment.is_up

    # -- medium -------------------------------------------------------------

    def _transmit_frame(
        self, frame: Frame, on_drop: Optional[Callable[[Frame, str], None]] = None
    ) -> None:
        self._require_host(frame.src_host)
        self._require_host(frame.dst_host)
        self.segment.transmit(frame, deliver=self._medium_delivered, on_drop=on_drop)

    def _transmit_frame_fast(
        self, frame: Frame, on_drop: Optional[Callable[[Frame, str], None]]
    ) -> None:
        # Hosts attach once and never detach, and an open RMS's endpoints
        # were validated at creation -- the per-frame _require_host checks
        # of :meth:`_transmit_frame` cannot fail here.
        self.segment.transmit(frame, deliver=self._medium_delivered, on_drop=on_drop)

    def _medium_delivered(self, frame: Frame) -> None:
        # Physical broadcast: every station (including eavesdroppers)
        # sees the frame; only the addressed host processes it.
        for sniffer in self._sniffers:
            sniffer(frame)
        self._frame_arrived(frame)

    def add_sniffer(self, callback: Callable[[Frame], None]) -> None:
        """Observe every frame on the segment (eavesdropper model)."""
        self._sniffers.append(callback)
        # Sniffers may retain frames indefinitely; stop recycling them.
        self._pool_frames = False

    # -- shared-network interface ----------------------------------------------

    def _path_profile(self, src: str, dst: str) -> Tuple[float, float, List[str]]:
        self._require_host(src)
        self._require_host(dst)
        fixed = self.segment.propagation_delay + self.segment.transmission_time(
            FRAME_OVERHEAD_BYTES
        )
        per_byte = 1.0 / self.segment.bandwidth
        return fixed, per_byte, [src, dst]

    def _admission_pools(self, route: List[str]) -> List[AdmissionController]:
        return [self._admission]

    @property
    def admission(self) -> AdmissionController:
        return self._admission

